//! Point queries: score a *single* item set against a prebuilt tree.
//!
//! Batch scoring ([`crate::score`]) aggregates a whole tree against a whole
//! instance — the right shape for evaluation runs, and entirely the wrong
//! shape for a serving daemon that answers one query at a time against a
//! long-lived tree. This module splits that work: a [`PointIndex`] is built
//! once per tree (materialized category sizes plus an `item → categories`
//! inverted index) and then answers each query in
//! `O(Σ_{i∈q} #categories(i))` — proportional to the query, not the tree.
//!
//! The best-cover tie-break is byte-for-byte the one batch scoring uses
//! (`(similarity, precision, depth, lowest CatId)` via the shared
//! [`better`](crate::score) predicate), so a point query over a set returns
//! exactly the cover [`crate::score::score_tree`] would report for it; a
//! test pins that equivalence.
//!
//! Point lookups are [`Budget`]-aware for serving: on expiry the candidate
//! scan stops early and the partial best is returned flagged
//! [`degraded`](PointCover::degraded) — pessimistic, never wrong, matching
//! the batch path's degraded-scoring contract.

use oct_resilience::Budget;

use crate::score::{better, category_depths};
use crate::similarity::Similarity;
use crate::tree::{CatId, CategoryTree};
use crate::util::FxHashMap;

/// How often (in candidate categories) a point lookup reads the clock.
const DEADLINE_STRIDE: u64 = 64;

/// Immutable per-tree index answering single-set cover queries.
///
/// Build once per tree snapshot ([`PointIndex::build`]), then share freely:
/// lookups take `&self`, so a serving daemon can hand one `Arc`'d index to
/// every worker and swap in a fresh one atomically when the tree rebuilds.
#[derive(Debug, Clone)]
pub struct PointIndex {
    /// `item → categories whose materialized subtree contains it`,
    /// ascending by category id.
    item_cats: Vec<Vec<CatId>>,
    /// Materialized (deduplicated-subtree) size per category slot.
    cat_sizes: Vec<u32>,
    /// Materialized item set per category slot, ascending (empty for
    /// removed slots) — the candidate reranker intersects against these
    /// directly instead of walking every posting list.
    cat_items: Vec<Vec<u32>>,
    /// Depth per category slot (root = 0).
    depths: Vec<u32>,
    /// Number of live categories indexed.
    live_categories: usize,
}

/// One ranked cover from a top-k query: a category with its exact
/// (reranked) scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCover {
    /// The category.
    pub cat: CatId,
    /// Its exact similarity under the queried variant.
    pub similarity: f64,
    /// Its precision (`|C ∩ q| / |C|`).
    pub precision: f64,
}

/// Best cover of one queried item set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointCover {
    /// The winning category (`None` when nothing scores above zero).
    pub best_category: Option<CatId>,
    /// Its similarity under the queried variant.
    pub similarity: f64,
    /// Its precision (`|C ∩ q| / |C|`; 1 when undefined).
    pub precision: f64,
    /// `true` when the best similarity passes the variant's threshold
    /// (same predicate as batch scoring's per-set `covered`).
    pub covered: bool,
    /// Candidate categories actually evaluated.
    pub evaluated: usize,
    /// `true` when the budget expired mid-scan and candidates were skipped
    /// — the reported cover is then a valid pessimistic lower bound.
    pub degraded: bool,
}

impl PointIndex {
    /// Indexes `tree` for point lookups. `num_items` sizes the inverted
    /// index; items assigned in the tree beyond it extend it automatically.
    pub fn build(tree: &CategoryTree, num_items: u32) -> Self {
        let full = tree.materialize();
        let live = tree.live_categories();
        let max_assigned = full
            .iter()
            .flat_map(|set| set.as_slice().last().copied())
            .max()
            .map_or(0, |m| m + 1);
        let mut item_cats = vec![Vec::new(); num_items.max(max_assigned) as usize];
        let mut cat_sizes = vec![0u32; tree.len()];
        let mut cat_items = vec![Vec::new(); tree.len()];
        for &cat in &live {
            let set = &full[cat as usize];
            cat_sizes[cat as usize] = set.len() as u32;
            for item in set.iter() {
                item_cats[item as usize].push(cat);
            }
            cat_items[cat as usize] = set.as_slice().to_vec();
        }
        // `live` ascends, so each item's category list is already sorted —
        // the deterministic evaluation order lookups rely on.
        Self {
            item_cats,
            cat_sizes,
            cat_items,
            depths: category_depths(tree),
            live_categories: live.len(),
        }
    }

    /// Number of live categories indexed.
    pub fn len(&self) -> usize {
        self.live_categories
    }

    /// `true` when the indexed tree has no live categories.
    pub fn is_empty(&self) -> bool {
        self.live_categories == 0
    }

    /// Number of item slots in the inverted index.
    pub fn num_items(&self) -> u32 {
        self.item_cats.len() as u32
    }

    /// Best cover of `items` (treated as a set; duplicates are ignored)
    /// under `similarity`, stopping early — pessimistically — once
    /// `budget` expires.
    ///
    /// Items outside the indexed universe stay in the query *size*: they
    /// can never intersect any category, so — exactly as batch
    /// [`score_tree`](crate::score::score_tree) semantics over a set
    /// containing them — they penalize the similarity denominator rather
    /// than silently inflating the reported cover.
    pub fn best_cover(
        &self,
        items: &[u32],
        similarity: &Similarity,
        budget: &Budget,
    ) -> PointCover {
        let mut query: Vec<u32> = items.to_vec();
        query.sort_unstable();
        query.dedup();
        let q_len = query.len();

        // Intersection counts over exactly the categories the query
        // touches. Unknown items (beyond the inverted index) contribute to
        // `q_len` above but cannot touch any posting list.
        let mut counts: FxHashMap<CatId, u32> = FxHashMap::default();
        for &item in &query {
            let Some(cats) = self.item_cats.get(item as usize) else {
                continue;
            };
            for &cat in cats {
                *counts.entry(cat).or_insert(0) += 1;
            }
        }
        // Deterministic evaluation order (and a deterministic degraded
        // prefix): ascending category id.
        let mut candidates: Vec<(CatId, u32)> = counts.into_iter().collect();
        candidates.sort_unstable_by_key(|&(cat, _)| cat);

        let limited = budget.is_limited();
        let mut best_sim = 0.0f64;
        let mut best_precision = 1.0f64;
        let mut best_depth = 0u32;
        let mut best_cat: Option<CatId> = None;
        let mut evaluated = 0usize;
        let mut degraded = false;
        for (seen, &(cat, inter)) in candidates.iter().enumerate() {
            if limited && budget.check_every(seen as u64, DEADLINE_STRIDE) {
                degraded = true;
                break;
            }
            let c_len = self.cat_sizes[cat as usize] as usize;
            let sim = similarity.score(q_len, c_len, inter as usize);
            let precision = if c_len == 0 {
                1.0
            } else {
                f64::from(inter) / c_len as f64
            };
            let depth = self.depths[cat as usize];
            if better(
                sim,
                precision,
                depth,
                cat,
                best_sim,
                best_precision,
                best_depth,
                best_cat,
            ) {
                best_sim = sim;
                best_precision = precision;
                best_depth = depth;
                best_cat = Some(cat);
            }
            evaluated += 1;
        }
        PointCover {
            best_category: best_cat,
            similarity: best_sim,
            precision: best_precision,
            covered: best_sim > 0.0,
            evaluated,
            degraded,
        }
    }

    /// Best cover of `items` evaluated over `candidates` only — the exact
    /// rerank half of narrow-then-rerank candidate generation (candidates
    /// typically come from [`crate::vector::VectorIndex::candidates_for`]).
    ///
    /// Query-size semantics, tie-break, and the budget contract are
    /// byte-identical to [`best_cover`](Self::best_cover); the only
    /// difference is the candidate universe. Whenever `candidates` contains
    /// every category intersecting the query (ANN recall 1 — guaranteed
    /// with a beam covering the whole index), the result equals the
    /// exhaustive scan's. Unknown, removed, or duplicate candidate ids are
    /// skipped; evaluation order is ascending category id regardless of
    /// input order.
    pub fn best_cover_among(
        &self,
        items: &[u32],
        candidates: &[CatId],
        similarity: &Similarity,
        budget: &Budget,
    ) -> PointCover {
        let (q_len, in_query) = self.query_mask(items);
        let ordered = self.ordered_candidates(candidates);
        let limited = budget.is_limited();
        let mut best_sim = 0.0f64;
        let mut best_precision = 1.0f64;
        let mut best_depth = 0u32;
        let mut best_cat: Option<CatId> = None;
        let mut evaluated = 0usize;
        let mut degraded = false;
        for (seen, &cat) in ordered.iter().enumerate() {
            if limited && budget.check_every(seen as u64, DEADLINE_STRIDE) {
                degraded = true;
                break;
            }
            let inter = self.intersection_size(cat, &in_query);
            let c_len = self.cat_sizes[cat as usize] as usize;
            let sim = similarity.score(q_len, c_len, inter);
            let precision = if c_len == 0 {
                1.0
            } else {
                inter as f64 / c_len as f64
            };
            let depth = self.depths[cat as usize];
            if better(
                sim,
                precision,
                depth,
                cat,
                best_sim,
                best_precision,
                best_depth,
                best_cat,
            ) {
                best_sim = sim;
                best_precision = precision;
                best_depth = depth;
                best_cat = Some(cat);
            }
            evaluated += 1;
        }
        PointCover {
            best_category: best_cat,
            similarity: best_sim,
            precision: best_precision,
            covered: best_sim > 0.0,
            evaluated,
            degraded,
        }
    }

    /// The top `k` covers of `items` among `candidates`, best first, with
    /// exact (reranked) scores — the serving half of `NAVIGATE <k>`.
    ///
    /// Ranking is the exact total order `(similarity, precision, depth,
    /// lowest id)` descending — no epsilon banding, so the order is a pure
    /// function of the inputs and byte-identical across runs and replicas.
    /// Only positive-similarity categories are returned, so fewer than `k`
    /// entries means nothing else intersected. On budget expiry the scan
    /// stops and the partial ranking over the evaluated prefix is returned
    /// with `degraded = true` — pessimistic, never wrong.
    pub fn top_covers_among(
        &self,
        items: &[u32],
        candidates: &[CatId],
        k: usize,
        similarity: &Similarity,
        budget: &Budget,
    ) -> (Vec<RankedCover>, bool) {
        let (q_len, in_query) = self.query_mask(items);
        let ordered = self.ordered_candidates(candidates);
        let limited = budget.is_limited();
        let mut scored: Vec<(RankedCover, u32)> = Vec::new();
        let mut degraded = false;
        for (seen, &cat) in ordered.iter().enumerate() {
            if limited && budget.check_every(seen as u64, DEADLINE_STRIDE) {
                degraded = true;
                break;
            }
            let inter = self.intersection_size(cat, &in_query);
            let c_len = self.cat_sizes[cat as usize] as usize;
            let sim = similarity.score(q_len, c_len, inter);
            if sim <= 0.0 {
                continue;
            }
            let precision = if c_len == 0 {
                1.0
            } else {
                inter as f64 / c_len as f64
            };
            scored.push((
                RankedCover {
                    cat,
                    similarity: sim,
                    precision,
                },
                self.depths[cat as usize],
            ));
        }
        scored.sort_unstable_by(|(a, da), (b, db)| {
            b.similarity
                .total_cmp(&a.similarity)
                .then(b.precision.total_cmp(&a.precision))
                .then(db.cmp(da))
                .then(a.cat.cmp(&b.cat))
        });
        scored.truncate(k);
        (scored.into_iter().map(|(c, _)| c).collect(), degraded)
    }

    /// Deduplicated query size (unknown items included — see
    /// [`best_cover`](Self::best_cover)) plus a membership bitmap over the
    /// indexed item universe.
    fn query_mask(&self, items: &[u32]) -> (usize, Vec<u64>) {
        let mut query: Vec<u32> = items.to_vec();
        query.sort_unstable();
        query.dedup();
        let mut mask = vec![0u64; self.item_cats.len().div_ceil(64)];
        for &item in &query {
            if (item as usize) < self.item_cats.len() {
                mask[item as usize / 64] |= 1u64 << (item % 64);
            }
        }
        (query.len(), mask)
    }

    /// Valid candidate slots, ascending and deduplicated.
    fn ordered_candidates(&self, candidates: &[CatId]) -> Vec<CatId> {
        let mut ordered: Vec<CatId> = candidates
            .iter()
            .copied()
            .filter(|&c| (c as usize) < self.cat_sizes.len())
            .collect();
        ordered.sort_unstable();
        ordered.dedup();
        ordered
    }

    /// `|query ∩ C|` via the materialized category set and a query bitmap:
    /// `O(|C|)` with no hashing, independent of posting-list lengths.
    fn intersection_size(&self, cat: CatId, in_query: &[u64]) -> usize {
        self.cat_items[cat as usize]
            .iter()
            .filter(|&&item| in_query[item as usize / 64] & (1u64 << (item % 64)) != 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{figure2_instance, InputSet, Instance};
    use crate::itemset::ItemSet;
    use crate::score::score_tree;
    use crate::tree::ROOT;

    /// The paper's Figure 2 tree `T1`.
    fn figure2_t1() -> CategoryTree {
        let mut t = CategoryTree::new();
        let c1 = t.add_category(ROOT);
        let c2 = t.add_category(ROOT);
        let c3 = t.add_category(c1);
        let c4 = t.add_category(c1);
        t.assign_items(c3, [0, 1]);
        t.assign_items(c4, [2, 3, 4, 5]);
        t.assign_items(c2, [6, 7, 8]);
        t
    }

    #[test]
    fn point_cover_matches_batch_scoring() {
        for similarity in [
            Similarity::perfect_recall(0.8),
            Similarity::jaccard_cutoff(0.6),
            Similarity::jaccard_threshold(0.6),
            Similarity::f1_cutoff(0.5),
        ] {
            let inst = figure2_instance(similarity);
            let tree = figure2_t1();
            let batch = score_tree(&inst, &tree);
            let index = PointIndex::build(&tree, inst.num_items);
            for (s, set) in inst.sets.iter().enumerate() {
                let point =
                    index.best_cover(set.items.as_slice(), &similarity, &Budget::unlimited());
                let expect = &batch.per_set[s];
                assert_eq!(
                    point.best_category, expect.best_category,
                    "{similarity:?} set {s}"
                );
                assert!((point.similarity - expect.similarity).abs() < 1e-12);
                assert!((point.precision - expect.precision).abs() < 1e-12);
                assert_eq!(point.covered, expect.covered);
                assert!(!point.degraded);
            }
        }
    }

    #[test]
    fn duplicates_are_ignored_but_unknown_items_count() {
        let tree = figure2_t1();
        let index = PointIndex::build(&tree, 9);
        let similarity = Similarity::jaccard_cutoff(0.1);
        let clean = index.best_cover(&[0, 1], &similarity, &Budget::unlimited());
        let duplicated = index.best_cover(&[1, 0, 0, 1], &similarity, &Budget::unlimited());
        assert_eq!(clean, duplicated, "duplicates are set-collapsed");
        assert!(clean.covered);
        // An out-of-universe id enlarges the query set: it can never
        // intersect, so the Jaccard denominator grows and similarity drops
        // — exactly what batch scoring reports for such a set.
        let noisy = index.best_cover(&[1, 0, 999_999], &similarity, &Budget::unlimited());
        assert_eq!(noisy.best_category, clean.best_category);
        assert!(
            noisy.similarity < clean.similarity,
            "unknown item must penalize: {noisy:?} vs {clean:?}"
        );
        assert!((noisy.similarity - 2.0 / 3.0).abs() < 1e-12, "J = 2/3");
    }

    #[test]
    fn unknown_items_match_batch_scorer_semantics() {
        // The same sets scored by the batch path, where "unknown" ids are
        // ordinary universe items that simply belong to no category.
        let tree = figure2_t1();
        let index = PointIndex::build(&tree, 9);
        for similarity in [
            Similarity::jaccard_cutoff(0.3),
            Similarity::jaccard_threshold(0.5),
            Similarity::f1_cutoff(0.3),
            Similarity::perfect_recall(0.5),
        ] {
            let sets = vec![
                InputSet::new(ItemSet::new(vec![0, 1, 999]), 1.0),
                InputSet::new(ItemSet::new(vec![2, 3, 4, 5, 77, 78]), 1.0),
                InputSet::new(ItemSet::new(vec![6, 7, 8]), 1.0),
                InputSet::new(ItemSet::new(vec![900, 901]), 1.0),
            ];
            let instance = Instance::new(1000, sets, similarity);
            let batch = score_tree(&instance, &tree);
            for (s, set) in instance.sets.iter().enumerate() {
                let point =
                    index.best_cover(set.items.as_slice(), &similarity, &Budget::unlimited());
                let expect = &batch.per_set[s];
                assert_eq!(
                    point.best_category, expect.best_category,
                    "{similarity:?} set {s}"
                );
                assert!(
                    (point.similarity - expect.similarity).abs() < 1e-12,
                    "{similarity:?} set {s}: {point:?} vs {expect:?}"
                );
                assert!((point.precision - expect.precision).abs() < 1e-12);
                assert_eq!(point.covered, expect.covered);
            }
        }
    }

    #[test]
    fn rerank_over_all_live_categories_equals_exhaustive_scan() {
        let tree = figure2_t1();
        let index = PointIndex::build(&tree, 9);
        let all = tree.live_categories();
        for similarity in [
            Similarity::jaccard_cutoff(0.3),
            Similarity::jaccard_threshold(0.6),
            Similarity::f1_cutoff(0.5),
            Similarity::perfect_recall(0.8),
        ] {
            for query in [
                vec![0, 1],
                vec![2, 3, 4],
                vec![0, 1, 2, 3, 4, 5, 6, 7, 8],
                vec![5, 6, 700],
                vec![],
            ] {
                let exhaustive = index.best_cover(&query, &similarity, &Budget::unlimited());
                let reranked =
                    index.best_cover_among(&query, &all, &similarity, &Budget::unlimited());
                assert_eq!(exhaustive.best_category, reranked.best_category);
                assert!((exhaustive.similarity - reranked.similarity).abs() < 1e-12);
                assert!((exhaustive.precision - reranked.precision).abs() < 1e-12);
                assert_eq!(exhaustive.covered, reranked.covered);
            }
        }
    }

    #[test]
    fn top_covers_rank_deterministically_and_lead_with_the_best() {
        let tree = figure2_t1();
        let index = PointIndex::build(&tree, 9);
        let all = tree.live_categories();
        let similarity = Similarity::jaccard_cutoff(0.1);
        let (top, degraded) =
            index.top_covers_among(&[0, 1, 2], &all, 3, &similarity, &Budget::unlimited());
        assert!(!degraded);
        assert!(!top.is_empty() && top.len() <= 3);
        // Best-first: monotone similarity, and duplicates of the ranking
        // are impossible (categories are unique).
        for pair in top.windows(2) {
            assert!(pair[0].similarity >= pair[1].similarity);
            assert_ne!(pair[0].cat, pair[1].cat);
        }
        // Candidate order must not matter.
        let mut shuffled = all.clone();
        shuffled.reverse();
        let (again, _) =
            index.top_covers_among(&[0, 1, 2], &shuffled, 3, &similarity, &Budget::unlimited());
        assert_eq!(top, again);
    }

    #[test]
    fn top_covers_respect_expired_budget() {
        let tree = figure2_t1();
        let index = PointIndex::build(&tree, 9);
        let all = tree.live_categories();
        let (top, degraded) = index.top_covers_among(
            &[0, 1, 2],
            &all,
            3,
            &Similarity::jaccard_cutoff(0.1),
            &Budget::expired_now(),
        );
        assert!(degraded);
        assert!(top.is_empty(), "first strided check already expired");
    }

    #[test]
    fn empty_query_and_empty_tree_cover_nothing() {
        let similarity = Similarity::jaccard_cutoff(0.5);
        let index = PointIndex::build(&figure2_t1(), 9);
        let cover = index.best_cover(&[], &similarity, &Budget::unlimited());
        assert_eq!(cover.best_category, None);
        assert!(!cover.covered);
        let empty = PointIndex::build(&CategoryTree::new(), 9);
        // The bare root still materializes (empty), so only a zero-score
        // cover is possible.
        let cover = empty.best_cover(&[0, 1], &similarity, &Budget::unlimited());
        assert_eq!(cover.best_category, None);
        assert!(!empty.is_empty(), "root is live");
    }

    #[test]
    fn expired_budget_degrades_pessimistically() {
        let index = PointIndex::build(&figure2_t1(), 9);
        let similarity = Similarity::jaccard_cutoff(0.6);
        let cover = index.best_cover(&[0, 1, 2], &similarity, &Budget::expired_now());
        assert!(cover.degraded);
        assert_eq!(cover.evaluated, 0, "first strided check already expired");
        assert_eq!(cover.best_category, None);
        let full = index.best_cover(&[0, 1, 2], &similarity, &Budget::unlimited());
        assert!(
            full.similarity >= cover.similarity,
            "degraded is a lower bound"
        );
    }

    #[test]
    fn removed_categories_never_win() {
        let mut tree = figure2_t1();
        let batch_winner = 3; // c3 = {0, 1}
        tree.remove_category(batch_winner);
        let index = PointIndex::build(&tree, 9);
        let cover = index.best_cover(
            &[0, 1],
            &Similarity::jaccard_cutoff(0.1),
            &Budget::unlimited(),
        );
        assert_ne!(cover.best_category, Some(batch_winner));
        assert!(cover.best_category.is_some(), "an ancestor still covers");
    }
}
