//! Navigation-quality analysis and score-free structural edits (§2.3,
//! "Navigation").
//!
//! The algorithms produce "the minimal number of categories necessary to
//! achieve its score"; taxonomists then add intermediate categories to aid
//! navigation, which the model permits "without affecting the score". This
//! module provides the structural metrics taxonomists look at and a
//! score-preserving fan-out reducer that groups an overly-wide category's
//! children under balanced intermediate nodes.

use crate::tree::{CatId, CategoryTree, ROOT};

/// Structural navigation metrics of a tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NavigationStats {
    /// Live categories (including the root).
    pub categories: usize,
    /// Leaf categories.
    pub leaves: usize,
    /// Maximum depth.
    pub max_depth: usize,
    /// Mean depth over leaves.
    pub mean_leaf_depth: f64,
    /// Maximum fan-out (children per category).
    pub max_fanout: usize,
    /// Mean fan-out over non-leaf categories.
    pub mean_fanout: f64,
}

/// Computes [`NavigationStats`] for a tree.
pub fn stats(tree: &CategoryTree) -> NavigationStats {
    let live = tree.live_categories();
    let mut leaves = 0usize;
    let mut max_depth = 0usize;
    let mut depth_sum = 0usize;
    let mut max_fanout = 0usize;
    let mut fanout_sum = 0usize;
    let mut internal = 0usize;
    for &cat in &live {
        let kids = tree.children(cat).len();
        if kids == 0 {
            leaves += 1;
            let d = tree.depth(cat);
            max_depth = max_depth.max(d);
            depth_sum += d;
        } else {
            internal += 1;
            max_fanout = max_fanout.max(kids);
            fanout_sum += kids;
        }
    }
    NavigationStats {
        categories: live.len(),
        leaves,
        max_depth,
        mean_leaf_depth: if leaves > 0 {
            depth_sum as f64 / leaves as f64
        } else {
            0.0
        },
        max_fanout,
        mean_fanout: if internal > 0 {
            fanout_sum as f64 / internal as f64
        } else {
            0.0
        },
    }
}

/// Reduces every category's fan-out to at most `max_children` by grouping
/// consecutive children (in their current order) under fresh intermediate
/// categories, recursively.
///
/// The edit is score-free: an intermediate node's item set is the union of
/// its children, which was already a subset of the parent — for any input
/// set, the new node's similarity is dominated by either the parent or the
/// best child only in degenerate cases, and crucially no existing category
/// changes. (The paper's claim is that *adding* categories never decreases
/// the max-based score; it may in fact increase it, which is a bonus.)
///
/// Returns the number of intermediate categories added.
///
/// # Panics
/// Panics when `max_children < 2`.
pub fn limit_fanout(tree: &mut CategoryTree, max_children: usize) -> usize {
    assert!(max_children >= 2, "fan-out limit must be at least 2");
    let mut added = 0;
    let mut queue = vec![ROOT];
    while let Some(cat) = queue.pop() {
        let children: Vec<CatId> = tree.children(cat).to_vec();
        if children.len() > max_children {
            // Partition children into ⌈k / max_children⌉ balanced groups.
            let groups = children.len().div_ceil(max_children);
            let per_group = children.len().div_ceil(groups);
            for chunk in children.chunks(per_group) {
                if chunk.len() == children.len() {
                    break; // already fits (single group)
                }
                let inter = tree.add_category(cat);
                added += 1;
                for &child in chunk {
                    tree.reparent(child, inter);
                }
                queue.push(inter);
            }
            // The parent may still exceed the limit if groups > max_children.
            if tree.children(cat).len() > max_children {
                queue.push(cat);
            }
        } else {
            queue.extend(children);
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{InputSet, Instance};
    use crate::itemset::ItemSet;
    use crate::score::score_tree;
    use crate::similarity::Similarity;

    fn wide_tree(k: usize) -> CategoryTree {
        let mut t = CategoryTree::new();
        for i in 0..k {
            let c = t.add_category(ROOT);
            t.assign_item(c, i as u32);
        }
        t
    }

    #[test]
    fn stats_of_wide_tree() {
        let t = wide_tree(10);
        let s = stats(&t);
        assert_eq!(s.categories, 11);
        assert_eq!(s.leaves, 10);
        assert_eq!(s.max_depth, 1);
        assert_eq!(s.max_fanout, 10);
    }

    #[test]
    fn limit_fanout_respects_bound() {
        let mut t = wide_tree(27);
        let added = limit_fanout(&mut t, 5);
        assert!(added > 0);
        for cat in t.live_categories() {
            assert!(
                t.children(cat).len() <= 5,
                "category {cat} has {} children",
                t.children(cat).len()
            );
        }
        // All items still present exactly once.
        let full = t.materialize();
        assert_eq!(full[ROOT as usize].len(), 27);
    }

    #[test]
    fn limit_fanout_preserves_scores() {
        let sets: Vec<InputSet> = (0..9)
            .map(|i| InputSet::new(ItemSet::new(vec![i * 2, i * 2 + 1]), 1.0))
            .collect();
        let instance = Instance::new(18, sets, Similarity::jaccard_threshold(0.9));
        let mut t = CategoryTree::new();
        for i in 0..9u32 {
            let c = t.add_category(ROOT);
            t.assign_items(c, [i * 2, i * 2 + 1]);
        }
        let before = score_tree(&instance, &t);
        limit_fanout(&mut t, 3);
        let after = score_tree(&instance, &t);
        assert!(
            after.total + 1e-9 >= before.total,
            "adding intermediates must not lower the score"
        );
        assert!(t.validate(&instance).is_ok());
        assert!(stats(&t).max_fanout <= 3);
    }

    #[test]
    fn already_narrow_tree_untouched() {
        let mut t = wide_tree(3);
        assert_eq!(limit_fanout(&mut t, 5), 0);
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_limit() {
        let mut t = wide_tree(3);
        let _ = limit_fanout(&mut t, 1);
    }
}
