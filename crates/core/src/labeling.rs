//! Category labeling support (paper §2.3, "Labeling").
//!
//! Naming categories is out of the paper's formal scope, but the system
//! "marks each category with the sets it matches, and their labels … hint
//! at a name". This module implements that marking: every category gets a
//! label suggestion derived from the input sets it covers, with the
//! covered sets' weights and precisions deciding among multiple matches.

use crate::input::Instance;
use crate::itemset::ItemSet;
use crate::score::covering_map;
use crate::tree::{CatId, CategoryTree, ROOT};
use crate::util::FxHashMap;

/// A label suggestion for one category.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelSuggestion {
    /// The category.
    pub category: CatId,
    /// Suggested label text.
    pub label: String,
    /// Input sets the category covers (the "marking").
    pub covered_sets: Vec<u32>,
    /// Weight-precision score of the winning set (how confident the
    /// suggestion is).
    pub confidence: f64,
}

/// Suggests a label for every live covering category of `tree`.
///
/// The label of a category covering several sets is the label of the
/// heaviest covered set (ties to higher precision); sets without labels
/// contribute a generated `set-<idx>` name. Non-covering categories get no
/// suggestion (they are either structural intermediates or `C_misc`).
pub fn suggest_labels(instance: &Instance, tree: &CategoryTree) -> Vec<LabelSuggestion> {
    let covers = covering_map(instance, tree);
    let full = tree.materialize();
    let mut out: Vec<LabelSuggestion> = Vec::new();
    for (&cat, sets) in &covers {
        if cat == ROOT {
            continue;
        }
        let c_items = &full[cat as usize];
        let mut best: Option<(f64, u32)> = None;
        for &s in sets {
            let set = &instance.sets[s as usize];
            let precision = precision_of(&set.items, c_items);
            let score = set.weight * precision;
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, s));
            }
        }
        let (confidence, winner) = best.expect("covering map entries are non-empty");
        let label = instance.sets[winner as usize]
            .label
            .clone()
            .unwrap_or_else(|| format!("set-{winner}"));
        out.push(LabelSuggestion {
            category: cat,
            label,
            covered_sets: sets.clone(),
            confidence,
        });
    }
    out.sort_by_key(|s| s.category);
    out
}

/// Applies [`suggest_labels`] to the tree in place, keeping existing labels
/// where no suggestion exists. Returns the number of labels written.
pub fn apply_labels(instance: &Instance, tree: &mut CategoryTree) -> usize {
    let suggestions = suggest_labels(instance, tree);
    let count = suggestions.len();
    for s in suggestions {
        tree.set_label(s.category, s.label);
    }
    count
}

/// The label-overlap diagnostic of §2.3: when a category covers multiple
/// sets, "the precision ensures a large overlap, indicating a similar
/// label". Returns, per multi-covering category, the minimum pairwise
/// Jaccard similarity among its covered sets — low values flag categories
/// whose matched sets disagree and deserve taxonomist review.
pub fn label_coherence(instance: &Instance, tree: &CategoryTree) -> FxHashMap<CatId, f64> {
    let covers = covering_map(instance, tree);
    let mut out = FxHashMap::default();
    for (&cat, sets) in &covers {
        if sets.len() < 2 {
            continue;
        }
        let mut min_sim = 1.0f64;
        for (i, &a) in sets.iter().enumerate() {
            for &b in &sets[i + 1..] {
                let (sa, sb) = (
                    &instance.sets[a as usize].items,
                    &instance.sets[b as usize].items,
                );
                let inter = sa.intersection_size(sb);
                let union = sa.len() + sb.len() - inter;
                let sim = if union == 0 {
                    1.0
                } else {
                    inter as f64 / union as f64
                };
                min_sim = min_sim.min(sim);
            }
        }
        out.insert(cat, min_sim);
    }
    out
}

fn precision_of(q: &ItemSet, c: &ItemSet) -> f64 {
    if c.is_empty() {
        return 1.0;
    }
    q.intersection_size(c) as f64 / c.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctcr::{self, CtcrConfig};
    use crate::input::{figure2_instance, InputSet};
    use crate::similarity::Similarity;

    #[test]
    fn figure2_categories_get_query_labels() {
        let instance = figure2_instance(Similarity::perfect_recall(0.8));
        let mut result = ctcr::run(&instance, &CtcrConfig::default());
        let n = apply_labels(&instance, &mut result.tree);
        assert!(n >= 3, "three covered sets expected");
        let labels: Vec<&str> = result
            .tree
            .live_categories()
            .into_iter()
            .filter_map(|c| result.tree.label(c))
            .collect();
        assert!(labels.contains(&"q1: black shirt"), "{labels:?}");
        assert!(labels.contains(&"q2: black adidas shirt"), "{labels:?}");
        assert!(labels.contains(&"q3: nike shirt"), "{labels:?}");
    }

    #[test]
    fn heaviest_set_wins_multi_cover() {
        // One category covers two sets; the heavier label must win.
        let sets = vec![
            InputSet::new(ItemSet::new(vec![0, 1, 2]), 5.0).with_label("heavy"),
            InputSet::new(ItemSet::new(vec![0, 1, 2]), 1.0).with_label("light"),
        ];
        let instance = Instance::new(3, sets, Similarity::jaccard_threshold(0.9));
        let mut tree = CategoryTree::new();
        let c = tree.add_category(ROOT);
        tree.assign_items(c, [0, 1, 2]);
        let suggestions = suggest_labels(&instance, &tree);
        let s = suggestions
            .iter()
            .find(|s| s.category == c)
            .expect("covered");
        assert_eq!(s.label, "heavy");
        assert_eq!(s.covered_sets, vec![0, 1]);
    }

    #[test]
    fn unlabeled_sets_get_generated_names() {
        let sets = vec![InputSet::new(ItemSet::new(vec![0, 1]), 1.0)];
        let instance = Instance::new(2, sets, Similarity::jaccard_threshold(0.9));
        let mut tree = CategoryTree::new();
        let c = tree.add_category(ROOT);
        tree.assign_items(c, [0, 1]);
        let suggestions = suggest_labels(&instance, &tree);
        assert_eq!(suggestions[0].label, "set-0");
    }

    #[test]
    fn coherence_flags_disagreeing_covers() {
        // A low threshold lets one category cover two barely-overlapping
        // sets; coherence must be low.
        let sets = vec![
            InputSet::new(ItemSet::new(vec![0, 1, 2, 3]), 1.0).with_label("a"),
            InputSet::new(ItemSet::new(vec![2, 3, 4, 5]), 1.0).with_label("b"),
        ];
        let instance = Instance::new(6, sets, Similarity::jaccard_threshold(0.5));
        let mut tree = CategoryTree::new();
        let c = tree.add_category(ROOT);
        tree.assign_items(c, [0, 1, 2, 3, 4, 5]);
        // J(q_a, C) = 4/6 ≥ 0.5 and J(q_b, C) = 4/6 ≥ 0.5: both covered.
        let coherence = label_coherence(&instance, &tree);
        let min_sim = coherence.get(&c).copied().expect("multi-cover");
        assert!((min_sim - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn root_gets_no_suggestion() {
        let sets = vec![InputSet::new(ItemSet::new(vec![0]), 1.0).with_label("x")];
        let instance = Instance::new(1, sets, Similarity::jaccard_threshold(0.5));
        let mut tree = CategoryTree::new();
        tree.assign_item(ROOT, 0);
        let suggestions = suggest_labels(&instance, &tree);
        assert!(suggestions.is_empty());
    }
}
