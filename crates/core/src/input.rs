//! `OCT` problem instances: weighted candidate categories over an item
//! universe.

use crate::itemset::{ItemId, ItemSet};
use crate::packed::{CsrIndex, PackedSet};
use crate::similarity::{Similarity, EPS};

/// One candidate category: an item set the solution should contain a
/// similar category for (a search-query result set, an existing-tree
/// category, a taxonomist-curated property set, …).
#[derive(Debug, Clone)]
pub struct InputSet {
    /// The items of the candidate category.
    pub items: ItemSet,
    /// Non-negative importance weight (e.g. average daily query frequency).
    pub weight: f64,
    /// Optional per-set similarity threshold overriding the instance `δ`.
    pub threshold: Option<f64>,
    /// Optional human-readable label (query text / category name); used for
    /// labeling the produced categories.
    pub label: Option<String>,
}

impl InputSet {
    /// A weighted, unlabeled candidate category.
    pub fn new(items: ItemSet, weight: f64) -> Self {
        Self {
            items,
            weight,
            threshold: None,
            label: None,
        }
    }

    /// Attaches a label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Overrides the similarity threshold for this set only.
    pub fn with_threshold(mut self, delta: f64) -> Self {
        self.threshold = Some(delta);
        self
    }
}

/// A complete `OCT` instance: `⟨Q, W⟩` plus the similarity variant and the
/// per-item branch bounds.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Universe size; item ids must be `< num_items`.
    pub num_items: u32,
    /// The candidate categories `Q` with their weights `W`.
    pub sets: Vec<InputSet>,
    /// Similarity variant and default threshold.
    pub similarity: Similarity,
    /// Per-item upper bound on the number of branches the item may appear
    /// on. `None` means the ubiquitous bound of 1 for every item.
    pub item_bounds: Option<Vec<u8>>,
}

impl Instance {
    /// Creates an instance with uniform item bound 1.
    ///
    /// # Panics
    /// Panics when a set references an item `≥ num_items`, a weight is
    /// negative/non-finite, or a per-set threshold is out of `(0, 1]`.
    pub fn new(num_items: u32, sets: Vec<InputSet>, similarity: Similarity) -> Self {
        let instance = Self {
            num_items,
            sets,
            similarity,
            item_bounds: None,
        };
        instance.validate();
        instance
    }

    /// Sets per-item branch bounds (`bounds.len() == num_items`, each ≥ 1).
    ///
    /// # Panics
    /// Panics on length mismatch or a zero bound.
    pub fn with_item_bounds(mut self, bounds: Vec<u8>) -> Self {
        assert_eq!(
            bounds.len(),
            self.num_items as usize,
            "bounds length must equal num_items"
        );
        assert!(bounds.iter().all(|&b| b >= 1), "item bounds must be ≥ 1");
        self.item_bounds = Some(bounds);
        self
    }

    fn validate(&self) {
        for (i, set) in self.sets.iter().enumerate() {
            assert!(
                set.weight.is_finite() && set.weight >= 0.0,
                "set {i} has invalid weight {}",
                set.weight
            );
            if let Some(t) = set.threshold {
                assert!(
                    t > 0.0 && t <= 1.0 + EPS,
                    "set {i} has invalid threshold {t}"
                );
            }
            if let Some(&max) = set.items.as_slice().last() {
                assert!(
                    max < self.num_items,
                    "set {i} references item {max} ≥ num_items {}",
                    self.num_items
                );
            }
        }
    }

    /// Number of input sets `n = |Q|`.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The effective threshold for set `idx` (per-set override or default).
    #[inline]
    pub fn threshold_of(&self, idx: usize) -> f64 {
        self.sets[idx].threshold.unwrap_or(self.similarity.delta)
    }

    /// The branch bound of item `i` (1 unless overridden).
    #[inline]
    pub fn bound_of(&self, item: ItemId) -> u8 {
        self.item_bounds.as_ref().map_or(1, |b| b[item as usize])
    }

    /// Sum of all set weights — the normalization constant for scores.
    pub fn total_weight(&self) -> f64 {
        self.sets.iter().map(|s| s.weight).sum()
    }

    /// Inverted index: for each item, the ascending list of input-set
    /// indices containing it, in CSR form (one flat posting buffer instead
    /// of a `Vec` per item — see [`CsrIndex`]).
    pub fn inverted_index(&self) -> CsrIndex {
        CsrIndex::build(self.num_items, self.sets.iter().map(|s| &s.items))
    }

    /// The input sets repacked as chunked bitmaps, indexed like `sets`.
    /// Used by the popcount-based hot paths (conflict subset tests, the
    /// ablation similarity matrix); `ItemSet` stays the reference.
    pub fn packed_sets(&self) -> Vec<PackedSet> {
        self.sets
            .iter()
            .map(|s| PackedSet::from_itemset(&s.items))
            .collect()
    }

    /// The paper's ranking (§3.2): sets sorted by size descending, then by
    /// weight ascending (heavier same-size sets rank lower in the tree),
    /// ties broken by index. Returns `rank[set_idx] ∈ 0..n` where rank 0 is
    /// the largest set.
    pub fn ranks(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.num_sets() as u32).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.sets[a as usize], &self.sets[b as usize]);
            sb.items
                .len()
                .cmp(&sa.items.len())
                .then(sa.weight.total_cmp(&sb.weight))
                .then(a.cmp(&b))
        });
        let mut rank = vec![0u32; self.num_sets()];
        for (r, &idx) in order.iter().enumerate() {
            rank[idx as usize] = r as u32;
        }
        rank
    }
}

/// Builds the toy instance of the paper's Figure 2 (items `a..=i` mapped to
/// `0..=8`): `q1 = {a,b,c,d,e}` w=2, `q2 = {a,b}` w=1, `q3 = {c,d,e,f}` w=1,
/// `q4 = {a,b,f,g,h,i}` w=1 (the long-sleeve shirts of Figure 3).
pub fn figure2_instance(similarity: Similarity) -> Instance {
    let sets = vec![
        InputSet::new(ItemSet::new(vec![0, 1, 2, 3, 4]), 2.0).with_label("q1: black shirt"),
        InputSet::new(ItemSet::new(vec![0, 1]), 1.0).with_label("q2: black adidas shirt"),
        InputSet::new(ItemSet::new(vec![2, 3, 4, 5]), 1.0).with_label("q3: nike shirt"),
        InputSet::new(ItemSet::new(vec![0, 1, 5, 6, 7, 8]), 1.0).with_label("q4: long sleeve"),
    ];
    Instance::new(9, sets, similarity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityKind;

    #[test]
    fn figure2_shape() {
        let inst = figure2_instance(Similarity::jaccard_cutoff(0.6));
        assert_eq!(inst.num_sets(), 4);
        assert_eq!(inst.total_weight(), 5.0);
        assert_eq!(inst.sets[0].items.len(), 5);
    }

    #[test]
    fn ranks_follow_size_then_weight() {
        // Two size-2 sets with different weights: the heavier ranks later.
        let sets = vec![
            InputSet::new(ItemSet::new(vec![0, 1]), 5.0),
            InputSet::new(ItemSet::new(vec![2, 3]), 1.0),
            InputSet::new(ItemSet::new(vec![0, 1, 2]), 1.0),
        ];
        let inst = Instance::new(4, sets, Similarity::jaccard_threshold(0.6));
        let ranks = inst.ranks();
        assert_eq!(ranks[2], 0, "largest set ranks first");
        assert_eq!(ranks[1], 1, "lighter of the size-2 sets next");
        assert_eq!(ranks[0], 2, "heavier same-size set ranks last");
    }

    #[test]
    fn threshold_override() {
        let sets = vec![
            InputSet::new(ItemSet::new(vec![0]), 1.0).with_threshold(0.4),
            InputSet::new(ItemSet::new(vec![1]), 1.0),
        ];
        let inst = Instance::new(2, sets, Similarity::jaccard_threshold(0.8));
        assert_eq!(inst.threshold_of(0), 0.4);
        assert_eq!(inst.threshold_of(1), 0.8);
    }

    #[test]
    fn bounds_default_to_one() {
        let inst = Instance::new(
            3,
            vec![InputSet::new(ItemSet::new(vec![0, 2]), 1.0)],
            Similarity::exact(),
        );
        assert_eq!(inst.bound_of(0), 1);
        let inst = inst.with_item_bounds(vec![2, 1, 1]);
        assert_eq!(inst.bound_of(0), 2);
    }

    #[test]
    fn inverted_index_lists_sets_per_item() {
        let inst = figure2_instance(Similarity::new(SimilarityKind::Exact, 1.0));
        let idx = inst.inverted_index();
        assert_eq!(&idx[0], &[0, 1, 3][..]); // item a in q1, q2, q4
        assert_eq!(&idx[5], &[2, 3][..]); // item f in q3, q4
        assert_eq!(&idx[8], &[3][..]); // item i only in q4
        assert_eq!(idx.num_items(), 9);
        assert_eq!(idx.num_postings(), 5 + 2 + 4 + 6);
    }

    #[test]
    fn packed_sets_mirror_input_sets() {
        let inst = figure2_instance(Similarity::new(SimilarityKind::Exact, 1.0));
        let packed = inst.packed_sets();
        assert_eq!(packed.len(), inst.num_sets());
        for (p, s) in packed.iter().zip(&inst.sets) {
            assert_eq!(p.to_vec(), s.items.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "references item")]
    fn rejects_out_of_universe_items() {
        let _ = Instance::new(
            2,
            vec![InputSet::new(ItemSet::new(vec![5]), 1.0)],
            Similarity::exact(),
        );
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn rejects_negative_weight() {
        let _ = Instance::new(
            2,
            vec![InputSet::new(ItemSet::new(vec![0]), -3.0)],
            Similarity::exact(),
        );
    }
}
