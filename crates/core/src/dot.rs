//! Graphviz (DOT) rendering of category trees.
//!
//! Taxonomists review trees visually; `to_dot` emits a `digraph` with one
//! node per live category (label + item count, covering categories
//! highlighted) ready for `dot -Tsvg`.

use crate::input::Instance;
use crate::score::covering_map;
use crate::tree::{CategoryTree, ROOT};
use crate::util::FxHashMap;

/// Options for DOT rendering.
#[derive(Debug, Clone, Copy)]
pub struct DotOptions {
    /// Include per-category item counts.
    pub item_counts: bool,
    /// Truncate labels to this many characters (0 = no truncation).
    pub max_label_len: usize,
    /// Omit subtrees below this depth (0 = unlimited).
    pub max_depth: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            item_counts: true,
            max_label_len: 32,
            max_depth: 0,
        }
    }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders `tree` as DOT. When `instance` is given, categories covering at
/// least one input set are filled; the covered set count is appended.
pub fn to_dot(tree: &CategoryTree, instance: Option<&Instance>, options: &DotOptions) -> String {
    let full = tree.materialize();
    let covers: FxHashMap<u32, Vec<u32>> = instance
        .map(|inst| covering_map(inst, tree))
        .unwrap_or_default();
    let mut out = String::from(
        "digraph category_tree {\n  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n",
    );
    let mut stack = vec![(ROOT, 0usize)];
    while let Some((cat, depth)) = stack.pop() {
        if options.max_depth > 0 && depth > options.max_depth {
            continue;
        }
        let mut label = tree.label(cat).unwrap_or("·").to_owned();
        if options.max_label_len > 0 && label.chars().count() > options.max_label_len {
            label = label
                .chars()
                .take(options.max_label_len)
                .collect::<String>()
                + "…";
        }
        let mut parts = vec![escape(&label)];
        if options.item_counts {
            parts.push(format!("{} items", full[cat as usize].len()));
        }
        let covered = covers.get(&cat).map(Vec::len).unwrap_or(0);
        if covered > 0 {
            parts.push(format!("covers {covered}"));
        }
        let style = if covered > 0 {
            ", style=filled, fillcolor=\"#d0e8d0\""
        } else {
            ""
        };
        out.push_str(&format!(
            "  n{cat} [label=\"{}\"{style}];\n",
            parts.join("\\n")
        ));
        for &child in tree.children(cat) {
            out.push_str(&format!("  n{cat} -> n{child};\n"));
            stack.push((child, depth + 1));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::figure2_instance;
    use crate::similarity::Similarity;

    fn sample() -> CategoryTree {
        let mut t = CategoryTree::new();
        let a = t.add_category(ROOT);
        t.set_label(a, "memory \"cards\"");
        t.assign_items(a, [0, 1]);
        let b = t.add_category(a);
        t.assign_item(b, 2);
        t
    }

    #[test]
    fn renders_nodes_and_edges() {
        let dot = to_dot(&sample(), None, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("3 items"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escapes_quotes() {
        let dot = to_dot(&sample(), None, &DotOptions::default());
        assert!(dot.contains("memory \\\"cards\\\""));
        assert!(!dot.contains("label=\"memory \"cards\"\""));
    }

    #[test]
    fn highlights_covering_categories() {
        let instance = figure2_instance(Similarity::perfect_recall(0.8));
        let result = crate::ctcr::run(&instance, &crate::ctcr::CtcrConfig::default());
        let dot = to_dot(&result.tree, Some(&instance), &DotOptions::default());
        assert!(dot.contains("fillcolor"), "covered categories are filled");
        assert!(dot.contains("covers "));
    }

    #[test]
    fn depth_limit_prunes() {
        let dot = to_dot(
            &sample(),
            None,
            &DotOptions {
                max_depth: 1,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("n0 -> n1"));
        assert!(!dot.contains("n2 ["), "depth-2 node omitted: {dot}");
    }

    #[test]
    fn label_truncation() {
        let mut t = CategoryTree::new();
        let a = t.add_category(ROOT);
        t.set_label(a, "x".repeat(100));
        let dot = to_dot(
            &t,
            None,
            &DotOptions {
                max_label_len: 8,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains(&("x".repeat(8) + "…")));
        assert!(!dot.contains(&"x".repeat(9)));
    }
}
