//! Faceted-search effort analysis (the §2.2 rationale for Perfect-Recall).
//!
//! With a filtering interface, a user who lands on category `C` while
//! seeking item set `q` must (a) actually find all of `q` there — recall
//! failures are *unrecoverable* because filters only narrow — and (b)
//! filter away `|C| − |C ∩ q|` foreign items. This module quantifies that
//! trade: per input set, the landing category (its best cover), whether
//! the session can succeed, and the filtering effort.

use crate::input::Instance;
use crate::score::score_tree;
use crate::tree::{CatId, CategoryTree};

/// One simulated faceted-search session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Session {
    /// The input set sought.
    pub set: u32,
    /// The category the tree search lands on (best cover), if any scored
    /// above zero.
    pub landing: Option<CatId>,
    /// `true` when every sought item is present in the landing category —
    /// the session can fully succeed through filtering alone.
    pub complete: bool,
    /// Foreign items the filter must remove (`|C| − |C ∩ q|`).
    pub filter_effort: usize,
}

/// Aggregate faceted-search quality of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FacetReport {
    /// Per-set sessions, indexed like `instance.sets`.
    pub sessions: Vec<Session>,
    /// Weight fraction of sets whose sessions are complete.
    pub complete_weight_fraction: f64,
    /// Mean filter effort over complete sessions (items to filter away).
    pub mean_filter_effort: f64,
}

/// Simulates a faceted-search session per input set against `tree`.
pub fn analyze(instance: &Instance, tree: &CategoryTree) -> FacetReport {
    let score = score_tree(instance, tree);
    let full = tree.materialize();
    let mut sessions = Vec::with_capacity(instance.num_sets());
    let mut complete_weight = 0.0;
    let mut effort_sum = 0usize;
    let mut complete_count = 0usize;
    for (idx, cover) in score.per_set.iter().enumerate() {
        let q = &instance.sets[idx].items;
        let landing = cover.best_category;
        let (complete, filter_effort) = match landing {
            Some(cat) => {
                let c = &full[cat as usize];
                let inter = q.intersection_size(c);
                (inter == q.len(), c.len() - inter)
            }
            None => (false, 0),
        };
        if complete {
            complete_weight += instance.sets[idx].weight;
            effort_sum += filter_effort;
            complete_count += 1;
        }
        sessions.push(Session {
            set: idx as u32,
            landing,
            complete,
            filter_effort,
        });
    }
    let total_weight = instance.total_weight();
    FacetReport {
        sessions,
        complete_weight_fraction: if total_weight > 0.0 {
            complete_weight / total_weight
        } else {
            0.0
        },
        mean_filter_effort: if complete_count > 0 {
            effort_sum as f64 / complete_count as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctcr::{self, CtcrConfig};
    use crate::input::{figure2_instance, InputSet};
    use crate::itemset::ItemSet;
    use crate::similarity::Similarity;
    use crate::tree::ROOT;

    #[test]
    fn perfect_recall_sessions_are_complete() {
        let instance = figure2_instance(Similarity::perfect_recall(0.8));
        let result = ctcr::run(&instance, &CtcrConfig::default());
        let report = analyze(&instance, &result.tree);
        for session in &report.sessions {
            if session.landing.is_some() && instance.sets[session.set as usize].weight > 0.0 {
                // Covered PR sets are complete by definition of the variant.
                let covered = result.score.per_set[session.set as usize].covered;
                if covered {
                    assert!(session.complete, "PR cover must be filter-safe");
                }
            }
        }
        // q1, q2, q3 covered → 4 of 5 weight units complete.
        assert!(report.complete_weight_fraction >= 0.8 - 1e-9);
    }

    #[test]
    fn filter_effort_counts_foreign_items() {
        // Category holds q plus 3 foreign items.
        let sets = vec![InputSet::new(ItemSet::new(vec![0, 1]), 1.0)];
        let instance = Instance::new(5, sets, Similarity::perfect_recall(0.4));
        let mut tree = CategoryTree::new();
        let c = tree.add_category(ROOT);
        tree.assign_items(c, [0, 1, 2, 3, 4]);
        let report = analyze(&instance, &tree);
        assert!(report.sessions[0].complete);
        assert_eq!(report.sessions[0].filter_effort, 3);
        assert_eq!(report.mean_filter_effort, 3.0);
    }

    #[test]
    fn incomplete_sessions_flagged_under_jaccard() {
        // A Jaccard cover that drops an item can never complete via filters.
        let sets = vec![InputSet::new(ItemSet::new(vec![0, 1, 2, 3, 4]), 1.0)];
        let instance = Instance::new(5, sets, Similarity::jaccard_threshold(0.8));
        let mut tree = CategoryTree::new();
        let c = tree.add_category(ROOT);
        tree.assign_items(c, [0, 1, 2, 3]); // J = 4/5 ≥ 0.8 but recall < 1
        let report = analyze(&instance, &tree);
        assert!(!report.sessions[0].complete);
        assert_eq!(report.complete_weight_fraction, 0.0);
    }

    #[test]
    fn empty_tree_yields_no_landings() {
        let instance = figure2_instance(Similarity::jaccard_threshold(0.8));
        let report = analyze(&instance, &CategoryTree::new());
        assert!(report.sessions.iter().all(|s| s.landing.is_none()));
    }
}
