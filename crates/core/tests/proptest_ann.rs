//! Property tests for the ANN candidate-generation path: with a beam wide
//! enough for recall 1, narrow-then-rerank must be indistinguishable from
//! the exhaustive point scan; the persisted index must round-trip
//! bit-identically through the v2 framing; and corrupting or truncating
//! the encoding must yield a typed error, never a panic.

use oct_core::persist::{decode_vector_index, encode_vector_index};
use oct_core::similarity::Similarity;
use oct_core::tree::{CategoryTree, ROOT};
use oct_core::vector::{VectorConfig, VectorIndex};
use oct_core::PointIndex;
use oct_resilience::Budget;
use proptest::prelude::*;

const UNIVERSE: u32 = 160;

/// A random two-level tree: `k` categories under the root over random item
/// slices (overlaps allowed — categories need not partition the universe),
/// with a fraction of leaves pushed a level deeper so depth tie-breaks are
/// exercised too.
fn arb_tree() -> impl Strategy<Value = CategoryTree> {
    let cat = (prop::collection::vec(0..UNIVERSE, 1..24), any::<bool>());
    prop::collection::vec(cat, 2..16).prop_map(|cats| {
        let mut tree = CategoryTree::new();
        let mut last = ROOT;
        for (items, deeper) in cats {
            let parent = if deeper && last != ROOT { last } else { ROOT };
            let cat = tree.add_category(parent);
            tree.assign_items(cat, items);
            last = cat;
        }
        tree
    })
}

fn arb_similarity() -> impl Strategy<Value = Similarity> {
    (0u8..4, 1u32..=9).prop_map(|(kind, d10)| {
        let delta = d10 as f64 / 10.0;
        match kind {
            0 => Similarity::jaccard_threshold(delta),
            1 => Similarity::jaccard_cutoff(delta),
            2 => Similarity::f1_cutoff(delta),
            _ => Similarity::perfect_recall(delta),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With the pool and beam covering the whole index (recall 1 by the
    /// exact-scan fallback), the narrow-then-rerank cover is semantically
    /// identical to the exhaustive scan: same winner, same similarity and
    /// precision bits, same covered flag.
    #[test]
    fn full_beam_narrow_equals_exhaustive(
        tree in arb_tree(),
        query in prop::collection::vec(0..UNIVERSE + 40, 1..24),
        similarity in arb_similarity(),
    ) {
        let point = PointIndex::build(&tree, UNIVERSE);
        let ann = VectorIndex::for_tree(&tree, &VectorConfig::default());
        let n = ann.len();
        let budget = Budget::unlimited();

        let exhaustive = point.best_cover(&query, &similarity, &budget);
        let candidates = ann.candidates_for(&query, n.max(1), n.max(1));
        prop_assert_eq!(candidates.len(), n, "a full pool returns every category");
        let narrowed = point.best_cover_among(&query, &candidates, &similarity, &budget);

        prop_assert_eq!(narrowed.best_category, exhaustive.best_category);
        prop_assert_eq!(narrowed.similarity.to_bits(), exhaustive.similarity.to_bits());
        prop_assert_eq!(narrowed.precision.to_bits(), exhaustive.precision.to_bits());
        prop_assert_eq!(narrowed.covered, exhaustive.covered);
    }

    /// The ranked top-k over the full candidate set agrees with the
    /// exhaustive best cover at rank 1, and its ordering is the documented
    /// total order (similarity desc, precision desc, depth desc, cat asc
    /// — checked on the similarity key, the only one visible without
    /// re-deriving depths).
    #[test]
    fn top_covers_lead_with_the_best_cover(
        tree in arb_tree(),
        query in prop::collection::vec(0..UNIVERSE, 1..24),
        similarity in arb_similarity(),
        k in 1usize..8,
    ) {
        let point = PointIndex::build(&tree, UNIVERSE);
        let ann = VectorIndex::for_tree(&tree, &VectorConfig::default());
        let n = ann.len();
        let budget = Budget::unlimited();

        let candidates = ann.candidates_for(&query, n.max(1), n.max(1));
        let (ranked, degraded) =
            point.top_covers_among(&query, &candidates, k, &similarity, &budget);
        prop_assert!(!degraded, "an unlimited budget never degrades");
        prop_assert!(ranked.len() <= k);
        for pair in ranked.windows(2) {
            prop_assert!(
                pair[0].similarity >= pair[1].similarity,
                "ranking must be non-increasing in similarity"
            );
        }
        let best = point.best_cover(&query, &similarity, &budget);
        match best.best_category {
            Some(cat) => {
                prop_assert!(!ranked.is_empty());
                prop_assert_eq!(ranked[0].cat, cat, "rank 1 must be the best cover");
                prop_assert_eq!(ranked[0].similarity.to_bits(), best.similarity.to_bits());
            }
            None => prop_assert!(ranked.is_empty(), "nothing covers ⇒ empty top-k"),
        }
    }

    /// Encode → decode → encode is bit-identical, and the decoded index
    /// answers every search exactly like the original.
    #[test]
    fn persisted_index_roundtrips_bit_identically(
        tree in arb_tree(),
        query in prop::collection::vec(0..UNIVERSE, 1..16),
    ) {
        let ann = VectorIndex::for_tree(&tree, &VectorConfig::default());
        let encoded = encode_vector_index(&ann);
        let decoded = decode_vector_index(encoded.clone()).expect("fresh encoding decodes");
        let re_encoded = encode_vector_index(&decoded);
        prop_assert_eq!(encoded.as_ref(), re_encoded.as_ref(), "round-trip is bit-identical");

        let ef = ann.len().max(1);
        let before = ann.candidates_for(&query, 8, ef);
        let after = decoded.candidates_for(&query, 8, ef);
        prop_assert_eq!(before, after, "the decoded index answers identically");
    }

    /// Any single-byte corruption and any truncation of a valid encoding
    /// decode to a typed error or (for a byte flip that keeps the checksum
    /// consistent — impossible for FNV over the payload, but the property
    /// does not rely on it) a valid index; they never panic.
    #[test]
    fn corrupt_and_truncated_encodings_are_typed_errors(
        tree in arb_tree(),
        flip_pos in 0usize..1 << 20,
        cut in 0usize..1 << 20,
    ) {
        let ann = VectorIndex::for_tree(&tree, &VectorConfig::default());
        let encoded = encode_vector_index(&ann);
        let bytes = encoded.as_ref().to_vec();

        let pos = flip_pos % bytes.len();
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x40;
        // Totality is the property: decode returns, Ok or Err, no panic.
        let _ = decode_vector_index(bytes::Bytes::from(flipped));

        let len = cut % bytes.len();
        let truncated = bytes[..len].to_vec();
        prop_assert!(
            decode_vector_index(bytes::Bytes::from(truncated)).is_err(),
            "a strict prefix can never checksum"
        );
    }
}
