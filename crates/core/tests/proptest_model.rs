//! Property tests for the model layer: item sets, similarity functions,
//! trees, and persistence.

use bytes::Bytes;
use oct_core::itemset::ItemSet;
use oct_core::persist;
use oct_core::prelude::*;
use oct_core::similarity::BaseMeasure;
use proptest::prelude::*;

fn arb_itemset(max: u32) -> impl Strategy<Value = ItemSet> {
    prop::collection::vec(0..max, 0..40).prop_map(ItemSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ------------------------------------------------------------- ItemSet
    #[test]
    fn itemset_algebra_laws(a in arb_itemset(80), b in arb_itemset(80)) {
        let inter = a.intersection_size(&b);
        prop_assert!(inter <= a.len().min(b.len()));
        prop_assert_eq!(a.union_size(&b), a.len() + b.len() - inter);
        prop_assert_eq!(a.intersection(&b).len(), inter);
        prop_assert_eq!(a.union(&b).len(), a.union_size(&b));
        prop_assert_eq!(a.difference(&b).len(), a.len() - inter);
        prop_assert_eq!(a.is_disjoint(&b), inter == 0);
        prop_assert_eq!(a.is_subset_of(&b), inter == a.len());
        // Symmetry.
        prop_assert_eq!(inter, b.intersection_size(&a));
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn itemset_membership_consistent(a in arb_itemset(60), b in arb_itemset(60)) {
        let union = a.union(&b);
        for i in 0..60u32 {
            prop_assert_eq!(union.contains(i), a.contains(i) || b.contains(i));
        }
        let inter = a.intersection(&b);
        for i in 0..60u32 {
            prop_assert_eq!(inter.contains(i), a.contains(i) && b.contains(i));
        }
    }

    // ---------------------------------------------------------- Similarity
    #[test]
    fn similarity_ranges_and_binaries(
        q_len in 1usize..50,
        extra_c in 0usize..50,
        delta10 in 1u32..=10,
    ) {
        let delta = delta10 as f64 / 10.0;
        // inter can be at most min(q_len, c_len); generate a consistent triple.
        let c_len = extra_c + 1;
        let inter = q_len.min(c_len);
        for sim in [
            Similarity::jaccard_cutoff(delta),
            Similarity::jaccard_threshold(delta),
            Similarity::f1_cutoff(delta),
            Similarity::f1_threshold(delta),
            Similarity::perfect_recall(delta),
        ] {
            let s = sim.score(q_len, c_len, inter);
            prop_assert!((0.0..=1.0).contains(&s), "{s} out of range");
            if sim.kind.is_binary() {
                prop_assert!(s == 0.0 || s == 1.0);
            }
        }
    }

    #[test]
    fn f1_dominates_jaccard(q_len in 1usize..40, c_len in 1usize..40) {
        let inter = q_len.min(c_len);
        let j = BaseMeasure::Jaccard.eval(q_len, c_len, inter);
        let f1 = BaseMeasure::F1.eval(q_len, c_len, inter);
        prop_assert!(f1 + 1e-12 >= j, "F1 {f1} < J {j}");
    }

    #[test]
    fn exact_iff_identical(a in arb_itemset(30), b in arb_itemset(30)) {
        let sim = Similarity::exact();
        let inter = a.intersection_size(&b);
        let s = sim.score(a.len(), b.len(), inter);
        prop_assert_eq!(s == 1.0, a == b || (a.is_empty() && b.is_empty()));
    }

    #[test]
    fn perfect_recall_requires_containment(a in arb_itemset(30), b in arb_itemset(30)) {
        prop_assume!(!a.is_empty());
        let sim = Similarity::perfect_recall(0.1);
        let inter = a.intersection_size(&b);
        let s = sim.score(a.len(), b.len(), inter);
        if s == 1.0 {
            prop_assert!(a.is_subset_of(&b));
        }
    }

    // ----------------------------------------------------------- Tree ops
    #[test]
    fn random_tree_materialization_is_monotone(
        ops in prop::collection::vec((0u8..2, 0u32..20, 0u32..100), 1..60)
    ) {
        let mut tree = CategoryTree::new();
        for (op, target, item) in ops {
            let live = tree.live_categories();
            let parent = live[(target as usize) % live.len()];
            if op == 0 {
                tree.add_category(parent);
            } else {
                tree.assign_item(parent, item);
            }
        }
        let full = tree.materialize();
        for cat in tree.live_categories() {
            if let Some(p) = tree.parent(cat) {
                prop_assert!(
                    full[cat as usize].is_subset_of(&full[p as usize]),
                    "child {cat} not contained in parent {p}"
                );
            }
        }
        // Root contains exactly the assigned items.
        let assigned = tree.assigned_items();
        prop_assert_eq!(full[ROOT as usize].as_slice(), assigned.as_slice());
    }

    #[test]
    fn remove_category_preserves_ancestor_contents(
        items_a in prop::collection::vec(0u32..50, 1..10),
        items_b in prop::collection::vec(0u32..50, 1..10),
    ) {
        let mut tree = CategoryTree::new();
        let a = tree.add_category(ROOT);
        let b = tree.add_category(a);
        tree.assign_items(a, items_a.clone());
        tree.assign_items(b, items_b.clone());
        let before = tree.materialize()[ROOT as usize].clone();
        tree.remove_category(b);
        let after = tree.materialize()[ROOT as usize].clone();
        prop_assert_eq!(before, after);
    }

    // ---------------------------------------------------------- Persistence
    #[test]
    fn persist_tree_roundtrip(
        ops in prop::collection::vec((0u8..3, 0u32..10, 0u32..60), 1..40)
    ) {
        let mut tree = CategoryTree::new();
        for (op, target, item) in ops {
            let live = tree.live_categories();
            let parent = live[(target as usize) % live.len()];
            match op {
                0 => {
                    let c = tree.add_category(parent);
                    tree.set_label(c, format!("cat-{c}"));
                }
                1 => tree.assign_item(parent, item),
                _ => {
                    // Reparent a random node under a random non-descendant
                    // (exercises encode ordering after restructuring).
                    let child = live[(item as usize) % live.len()];
                    if child != ROOT
                        && child != parent
                        && !tree.is_ancestor(child, parent)
                    {
                        tree.reparent(child, parent);
                    }
                }
            }
        }
        let decoded = persist::decode_tree(persist::encode_tree(&tree)).expect("roundtrip");
        prop_assert_eq!(decoded.live_categories().len(), tree.live_categories().len());
        let (a, b) = (tree.materialize(), decoded.materialize());
        prop_assert_eq!(&a[ROOT as usize], &b[ROOT as usize]);
    }

    #[test]
    fn persist_instance_roundtrip(
        raw_sets in prop::collection::vec(
            (prop::collection::vec(0u32..40, 1..12), 0.0f64..50.0), 1..10),
        delta10 in 1u32..=10,
    ) {
        let sets: Vec<InputSet> = raw_sets
            .into_iter()
            .map(|(items, w)| InputSet::new(ItemSet::new(items), w))
            .collect();
        let instance = Instance::new(40, sets, Similarity::jaccard_threshold(delta10 as f64 / 10.0));
        let decoded = persist::decode_instance(persist::encode_instance(&instance))
            .expect("roundtrip");
        prop_assert_eq!(decoded.num_sets(), instance.num_sets());
        for (x, y) in decoded.sets.iter().zip(&instance.sets) {
            prop_assert_eq!(&x.items, &y.items);
            prop_assert!((x.weight - y.weight).abs() < 1e-12);
        }
    }

    #[test]
    fn persist_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = persist::decode_tree(Bytes::from(bytes.clone()));
        let _ = persist::decode_instance(Bytes::from(bytes));
    }
}
