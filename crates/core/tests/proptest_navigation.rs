//! Property tests for `navigation::limit_fanout`: the fan-out reducer must
//! be score-free across instances, similarity variants, and δ — including
//! chunk-boundary group counts where one grouping pass still leaves more
//! groups than the limit and the parent is re-queued.

use oct_core::input::{InputSet, Instance};
use oct_core::itemset::ItemSet;
use oct_core::navigation::limit_fanout;
use oct_core::score::score_tree;
use oct_core::similarity::Similarity;
use oct_core::tree::{CategoryTree, ROOT};
use proptest::prelude::*;

const UNIVERSE: u32 = 200;

/// All three similarity variants across a δ sweep (the vendored proptest
/// has no `prop_oneof`, so variants are tagged).
fn arb_similarity() -> impl Strategy<Value = Similarity> {
    (0u8..3, 3u32..=9).prop_map(|(kind, d10)| {
        let delta = d10 as f64 / 10.0;
        match kind {
            0 => Similarity::jaccard_threshold(delta),
            1 => Similarity::f1_threshold(delta),
            _ => Similarity::perfect_recall(delta),
        }
    })
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    let set = prop::collection::vec(0..UNIVERSE, 2..30);
    (prop::collection::vec((set, 1u32..10), 2..24), arb_similarity()).prop_map(|(raw, sim)| {
        let sets: Vec<InputSet> = raw
            .into_iter()
            .map(|(items, w)| InputSet::new(ItemSet::new(items), w as f64))
            .filter(|s| !s.items.is_empty())
            .collect();
        Instance::new(UNIVERSE, sets, sim)
    })
}

/// A wide tree: partition the universe into `k` contiguous chunks, one
/// category per chunk under the root — fan-out `k` forces grouping, and
/// `k > max_children²` forces the re-queue path.
fn wide_partition_tree(k: usize) -> CategoryTree {
    let mut tree = CategoryTree::new();
    let per = (UNIVERSE as usize).div_ceil(k);
    let items: Vec<u32> = (0..UNIVERSE).collect();
    for chunk in items.chunks(per) {
        let cat = tree.add_category(ROOT);
        tree.assign_items(cat, chunk.iter().copied());
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn limit_fanout_never_lowers_the_score(
        instance in arb_instance(),
        k in 5usize..64,
        max_children in 2usize..6,
    ) {
        let mut tree = wide_partition_tree(k);
        let before = score_tree(&instance, &tree);
        let added = limit_fanout(&mut tree, max_children);
        let after = score_tree(&instance, &tree);
        prop_assert!(
            after.total + 1e-9 >= before.total,
            "score dropped from {} to {} (k={}, max_children={}, added={})",
            before.total, after.total, k, max_children, added
        );
        for cat in tree.live_categories() {
            prop_assert!(tree.children(cat).len() <= max_children);
        }
        prop_assert_eq!(tree.materialize()[ROOT as usize].len(), UNIVERSE as usize);
        prop_assert!(tree.validate(&instance).is_ok());
    }

    /// Chunk-boundary sweep: every `(children, max_children)` combination up
    /// to 80×5, which includes all `groups > max_children` re-queue cases.
    #[test]
    fn regrouping_bounds_fanout_for_every_group_count(
        children in 2usize..=80,
        max_children in 2usize..=5,
    ) {
        let mut tree = CategoryTree::new();
        for i in 0..children {
            let cat = tree.add_category(ROOT);
            tree.assign_item(cat, i as u32);
        }
        limit_fanout(&mut tree, max_children);
        for cat in tree.live_categories() {
            prop_assert!(tree.children(cat).len() <= max_children);
        }
        prop_assert_eq!(tree.materialize()[ROOT as usize].len(), children);
    }
}
