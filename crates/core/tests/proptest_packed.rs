//! Differential property tests for the packed bitmap substrate: every
//! [`PackedSet`] operation must agree with the scalar [`ItemSet`] reference
//! *and* with a `BTreeSet` oracle on adversarial shapes (empty sets,
//! singletons, dense contiguous runs, sparse power-law ids, ids at the top
//! of the `u32` range), and [`classify_pair_packed`] must equal
//! [`classify_pair`] across all six similarity variants and a δ grid.

use std::collections::BTreeSet;

use oct_core::conflict::{classify_pair, classify_pair_packed, intersecting_pairs};
use oct_core::input::{InputSet, Instance};
use oct_core::itemset::ItemSet;
use oct_core::packed::PackedSet;
use oct_core::similarity::Similarity;
use proptest::prelude::*;

/// Adversarial item-id vectors: the shapes that stress every container
/// representation and the sparse↔dense transitions between them. The
/// vendored proptest has no `prop_oneof`, so one tagged strategy derives
/// each shape from shared raw draws.
fn arb_items() -> impl Strategy<Value = Vec<u32>> {
    (
        0u32..7,
        prop::collection::vec(0u32..4096, 0..60),
        0u32..100_000,
        1usize..400,
    )
        .prop_map(|(tag, raw, base, len)| match tag {
            // Empty and singleton sets.
            0 => Vec::new(),
            1 => vec![base],
            // Dense contiguous run: forces Dense containers, full words.
            2 => (base..base + len as u32).collect(),
            // Sparse spread-out ids: at most a couple per chunk.
            3 => raw.iter().map(|&r| r * 83_003 + base).collect(),
            // Clustered at chunk boundaries (multiples of 1024): ids land
            // on the first/last slots of many containers.
            4 => raw
                .iter()
                .map(|&r| (r % 64) * 1024 + if r % 2 == 0 { 0 } else { 1023 })
                .collect(),
            // Density straddling the sparse↔dense threshold of one chunk.
            5 => (0..20 + raw.len() as u32)
                .map(|i| (base % 1000) * 1024 + (i * 21) % 1024)
                .collect(),
            // Ids at the very top of the u32 range.
            _ => raw.iter().map(|&r| u32::MAX - r).collect(),
        })
}

fn oracle(items: &[u32]) -> BTreeSet<u32> {
    items.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Three-way agreement on every set operation: PackedSet vs ItemSet vs
    /// the BTreeSet oracle.
    #[test]
    fn packed_matches_scalar_and_oracle(a in arb_items(), b in arb_items()) {
        let (sa, sb) = (oracle(&a), oracle(&b));
        let (ia, ib) = (ItemSet::new(a.clone()), ItemSet::new(b.clone()));
        let (pa, pb) = (PackedSet::from(&ia), PackedSet::from(&ib));

        // Cardinality and membership.
        prop_assert_eq!(pa.len(), sa.len());
        prop_assert_eq!(pa.len(), ia.len());
        prop_assert_eq!(pa.is_empty(), sa.is_empty());
        for &x in sa.iter().take(50) {
            prop_assert!(pa.contains(x));
        }
        for &x in sb.iter().take(50) {
            prop_assert_eq!(pa.contains(x), sa.contains(&x));
        }

        // Binary operations against both references.
        let inter_oracle = sa.intersection(&sb).count();
        prop_assert_eq!(pa.intersection_size(&pb), inter_oracle);
        prop_assert_eq!(ia.intersection_size(&ib), inter_oracle);
        let union_oracle = sa.union(&sb).count();
        prop_assert_eq!(pa.union_size(&pb), union_oracle);
        prop_assert_eq!(ia.union_size(&ib), union_oracle);
        prop_assert_eq!(pa.is_disjoint(&pb), inter_oracle == 0);
        prop_assert_eq!(pa.is_subset_of(&pb), sa.is_subset(&sb));
        prop_assert_eq!(pb.is_subset_of(&pa), sb.is_subset(&sa));
        prop_assert_eq!(ia.is_subset_of(&ib), sa.is_subset(&sb));

        let diff_oracle: Vec<u32> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(pa.difference(&pb).to_vec(), diff_oracle.clone());
        let diff_scalar = ia.difference(&ib);
        prop_assert_eq!(diff_scalar.as_slice(), &diff_oracle[..]);

        // Iteration order and round-trips.
        let sorted: Vec<u32> = sa.iter().copied().collect();
        prop_assert_eq!(pa.to_vec(), sorted.clone());
        prop_assert_eq!(pa.iter().collect::<Vec<u32>>(), sorted);
        prop_assert_eq!(pa.to_itemset(), ia.clone());
        prop_assert_eq!(PackedSet::from(&pa.to_itemset()), pa.clone());

        // Canonical form: equal contents → equal values, both directions.
        let rebuilt = PackedSet::from_sorted(ia.as_slice());
        prop_assert_eq!(rebuilt, pa);
    }

    /// Difference results stay canonical: re-packing the materialized
    /// difference yields the same `PackedSet` the direct call produced.
    #[test]
    fn difference_stays_canonical(a in arb_items(), b in arb_items()) {
        let pa = PackedSet::from(&ItemSet::new(a));
        let pb = PackedSet::from(&ItemSet::new(b));
        let diff = pa.difference(&pb);
        prop_assert_eq!(PackedSet::from_sorted(&diff.to_vec()), diff);
    }
}

/// Instances with overlapping sets over a modest universe, so intersecting
/// pairs (the classifier's domain) occur often.
fn arb_instance(similarity: Similarity) -> impl Strategy<Value = Instance> {
    let set = (0u32..12, 2usize..20).prop_flat_map(|(cluster, len)| {
        let base = cluster * 24;
        prop::collection::vec(base..base + 48, len)
    });
    prop::collection::vec((set, 1u32..6), 2..24).prop_map(move |raw| {
        let sets: Vec<InputSet> = raw
            .into_iter()
            .map(|(items, w)| InputSet::new(ItemSet::new(items), w as f64))
            .filter(|s| !s.items.is_empty())
            .collect();
        Instance::new(12 * 24 + 48, sets, similarity)
    })
}

/// The six similarity variants at threshold `delta`.
fn variants(delta: f64) -> [Similarity; 6] {
    [
        Similarity::jaccard_cutoff(delta),
        Similarity::jaccard_threshold(delta),
        Similarity::f1_cutoff(delta),
        Similarity::f1_threshold(delta),
        Similarity::perfect_recall(delta),
        Similarity::exact(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `classify_pair_packed` ≡ `classify_pair` on every intersecting pair,
    /// for all six variants and a δ grid covering loose to strict.
    #[test]
    fn classify_packed_equals_scalar_on_all_variants(
        seed_instance in arb_instance(Similarity::exact()),
        delta_idx in 0usize..7,
    ) {
        const DELTA_GRID: [f64; 7] = [0.05, 0.25, 0.50, 0.60, 0.75, 0.90, 0.99];
        let delta = DELTA_GRID[delta_idx];
        for similarity in variants(delta) {
            let instance = Instance::new(
                seed_instance.num_items,
                seed_instance.sets.clone(),
                similarity,
            );
            let packed = instance.packed_sets();
            for pair in intersecting_pairs(&instance, 1) {
                let (hi, lo) = (pair.hi as usize, pair.lo as usize);
                let (inter, eff) = (pair.inter as usize, pair.eff_inter as usize);
                let scalar = classify_pair(&instance, hi, lo, inter, eff);
                let bitset = classify_pair_packed(&instance, hi, lo, inter, eff, &packed);
                prop_assert_eq!(
                    scalar, bitset,
                    "variant {:?} δ={} pair ({hi},{lo})",
                    similarity.kind, delta
                );
            }
        }
    }
}
