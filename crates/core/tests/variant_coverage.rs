//! End-to-end coverage of the less-exercised corners: the F1 variants,
//! per-item bounds above 1, per-set thresholds, and cutoff-vs-threshold
//! relationships.

use oct_core::prelude::*;
use oct_core::similarity::SimilarityKind;

fn inst(sets: Vec<(Vec<u32>, f64)>, sim: Similarity, num_items: u32) -> Instance {
    Instance::new(
        num_items,
        sets.into_iter()
            .map(|(items, w)| InputSet::new(ItemSet::new(items), w))
            .collect(),
        sim,
    )
}

// ----------------------------------------------------------------- F1

#[test]
fn f1_conflict_formulas_match_semantics() {
    // F1 with C ⊆ q of size s: F1 = 2s/(s+|q|). For |q| = 10, δ = 0.8:
    // minimal s = ⌈0.8·10/1.2⌉ = 7, so slack x = 3 per set.
    // Two sets of 10 sharing 6 items: 6 ≤ 3+3 → separable.
    let sep = inst(
        vec![((0..10).collect(), 1.0), ((4..14).collect(), 1.0)],
        Similarity::f1_threshold(0.8),
        14,
    );
    let analysis = oct_core::conflict::analyze(&sep, 1, true);
    assert!(analysis.conflicts2.is_empty());

    // Sharing 8 items: 8 > 3+3 → not separable; together? y2 = 7−8 < 0 →
    // y2 = 0 → can-together → must-together, still no conflict.
    let must = inst(
        vec![((0..10).collect(), 1.0), ((2..12).collect(), 1.0)],
        Similarity::f1_threshold(0.8),
        12,
    );
    let analysis = oct_core::conflict::analyze(&must, 1, true);
    assert!(analysis.conflicts2.is_empty());
    assert_eq!(analysis.must_together.len(), 1);
}

#[test]
fn f1_threshold_end_to_end_covers_nested_family() {
    let instance = inst(
        vec![
            ((0..30).collect(), 5.0),
            ((0..10).collect(), 2.0),
            ((10..20).collect(), 2.0),
            ((30..40).collect(), 1.0),
        ],
        Similarity::f1_threshold(0.8),
        40,
    );
    let result = ctcr::run(&instance, &CtcrConfig::default());
    assert!(result.tree.validate(&instance).is_ok());
    assert_eq!(
        result.score.covered_count(),
        4,
        "all four sets are jointly coverable: {:?}",
        result.score.per_set
    );
}

#[test]
fn f1_cutoff_scores_are_graded() {
    let instance = inst(
        vec![((0..10).collect(), 1.0), ((5..15).collect(), 1.0)],
        Similarity::new(SimilarityKind::F1Cutoff, 0.5),
        15,
    );
    let result = ctcr::run(&instance, &CtcrConfig::default());
    assert!(result.tree.validate(&instance).is_ok());
    for cover in &result.score.per_set {
        assert!((0.0..=1.0).contains(&cover.similarity));
    }
    assert!(result.score.total > 0.0);
}

// ------------------------------------------------------------- bounds

#[test]
fn bound_two_resolves_the_memory_cards_scenario() {
    // Figure 1: memory cards fit under both cameras and phones when the
    // platform sells dual placement (bound 2).
    let cameras: Vec<u32> = (0..10).collect(); // cameras + their cards
    let phones: Vec<u32> = (8..18).collect(); // phones + the same cards
    let sets = vec![(cameras.clone(), 3.0), (phones.clone(), 3.0)];
    let strict = inst(sets.clone(), Similarity::jaccard_threshold(0.95), 18);
    let strict_result = ctcr::run(&strict, &CtcrConfig::default());
    assert!(
        strict_result.score.covered_count() < 2,
        "bound 1 cannot satisfy both: {:?}",
        strict_result.score.per_set
    );

    let mut bounds = vec![1u8; 18];
    bounds[8] = 2;
    bounds[9] = 2; // the shared memory cards
    let relaxed = inst(sets, Similarity::jaccard_threshold(0.95), 18).with_item_bounds(bounds);
    let relaxed_result = ctcr::run(&relaxed, &CtcrConfig::default());
    assert!(relaxed_result.tree.validate(&relaxed).is_ok());
    assert_eq!(
        relaxed_result.score.covered_count(),
        2,
        "bound 2 lets the cards serve both branches: {:?}",
        relaxed_result.score.per_set
    );
}

#[test]
fn validation_catches_bound_violations_from_foreign_trees() {
    let instance = inst(vec![(vec![0, 1], 1.0)], Similarity::exact(), 2);
    let mut tree = CategoryTree::new();
    let a = tree.add_category(ROOT);
    let b = tree.add_category(ROOT);
    tree.assign_item(a, 0);
    tree.assign_item(b, 0);
    assert!(tree.validate(&instance).is_err());
}

// ----------------------------------------------------- per-set deltas

#[test]
fn per_set_thresholds_steer_conflicts() {
    // Crossing pair at δ = 0.9 is a conflict; relaxing ONE set's threshold
    // to 0.3 makes the pair separable (its slack absorbs the intersection).
    let sets = vec![(vec![0, 1, 2, 3], 1.0), (vec![2, 3, 4, 5], 1.0)];
    let strict = inst(sets.clone(), Similarity::jaccard_threshold(0.9), 6);
    assert_eq!(
        oct_core::conflict::analyze(&strict, 1, true)
            .conflicts2
            .len(),
        1
    );

    let mut relaxed = inst(sets, Similarity::jaccard_threshold(0.9), 6);
    relaxed.sets[0].threshold = Some(0.3);
    let analysis = oct_core::conflict::analyze(&relaxed, 1, true);
    assert!(
        analysis.conflicts2.is_empty(),
        "slack x = ⌊4·0.7⌋ = 2 on one side covers the shared pair"
    );
    let result = ctcr::run(&relaxed, &CtcrConfig::default());
    assert_eq!(result.score.covered_count(), 2);
}

// -------------------------------------------- cutoff vs threshold laws

#[test]
fn threshold_score_bounds_cutoff_score() {
    // For the same tree, threshold similarity ≥ cutoff similarity pointwise
    // (1 vs a value ≤ 1 above δ; both 0 below). Build under cutoff, score
    // under both.
    let ds_sets: Vec<(Vec<u32>, f64)> = (0..12u32)
        .map(|i| {
            let base = i * 5;
            let items: Vec<u32> = (base..base + 8).map(|x| x % 64).collect();
            (items, 1.0 + i as f64)
        })
        .collect();
    let cutoff = inst(ds_sets.clone(), Similarity::jaccard_cutoff(0.6), 64);
    let result = ctcr::run(&cutoff, &CtcrConfig::default());
    let threshold = inst(ds_sets, Similarity::jaccard_threshold(0.6), 64);
    let threshold_score = score_tree(&threshold, &result.tree);
    let cutoff_score = score_tree(&cutoff, &result.tree);
    assert!(threshold_score.total + 1e-9 >= cutoff_score.total);
    assert_eq!(
        threshold_score.covered_count(),
        cutoff_score.covered_count(),
        "cover sets agree between the two readings"
    );
}

#[test]
fn exact_variant_ignores_extensions() {
    // The Exact pipeline must be untouched by repair/nesting switches.
    let sets = vec![(vec![0, 1, 2], 2.0), (vec![0, 1], 1.0), (vec![3, 4], 1.0)];
    let instance = inst(sets, Similarity::exact(), 5);
    let on = ctcr::run(&instance, &CtcrConfig::default());
    let off = ctcr::run(
        &instance,
        &CtcrConfig {
            repair: false,
            nest_contained: false,
            ..CtcrConfig::default()
        },
    );
    assert_eq!(on.score.total, off.score.total);
    assert_eq!(on.score.covered_count(), off.score.covered_count());
}
