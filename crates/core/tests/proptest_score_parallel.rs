//! Property test: the parallel scorer is bit-identical to the serial one.
//!
//! `score_tree_with` at `threads >= 2` partitions the tree into frontier
//! subtrees and merges per-worker results; this test checks that the merge
//! (including every tie-break) reproduces the serial `TreeScore` exactly —
//! same totals, same per-set best categories, same similarities — on random
//! instances and random tree shapes at 1, 2, and 4 threads.

use oct_core::prelude::*;
use oct_core::score::{score_tree_with, ScoreOptions};
use proptest::prelude::*;

/// Builds a random tree the same way the model proptests do: each op either
/// adds a category under a random live parent or assigns an item to one.
fn tree_from_ops(ops: &[(u8, u32, u32)]) -> CategoryTree {
    let mut tree = CategoryTree::new();
    for &(op, target, item) in ops {
        let live = tree.live_categories();
        let parent = live[(target as usize) % live.len()];
        if op == 0 {
            tree.add_category(parent);
        } else {
            tree.assign_item(parent, item);
        }
    }
    tree
}

fn instance_from_sets(raw_sets: Vec<(Vec<u32>, f64)>, delta: f64) -> Instance {
    let sets: Vec<InputSet> = raw_sets
        .into_iter()
        .map(|(items, w)| InputSet::new(ItemSet::new(items), w))
        .collect();
    Instance::new(100, sets, Similarity::jaccard_threshold(delta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn score_parallel_matches_serial(
        ops in prop::collection::vec((0u8..2, 0u32..20, 0u32..100), 1..80),
        raw_sets in prop::collection::vec(
            (prop::collection::vec(0u32..100, 1..15), 0.1f64..50.0), 1..12),
        delta10 in 1u32..=10,
    ) {
        let tree = tree_from_ops(&ops);
        let instance = instance_from_sets(raw_sets, delta10 as f64 / 10.0);
        let serial = score_tree_with(&instance, &tree, &ScoreOptions::serial());
        for threads in [2usize, 4] {
            let parallel =
                score_tree_with(&instance, &tree, &ScoreOptions::with_threads(threads));
            prop_assert_eq!(
                &serial, &parallel,
                "threads={} diverged from serial", threads
            );
        }
        // Structural invariants of the result itself.
        prop_assert!(serial.normalized >= 0.0 && serial.normalized <= 1.0 + 1e-12);
        for cover in &serial.per_set {
            prop_assert_eq!(cover.covered, cover.similarity > 0.0);
            prop_assert_eq!(cover.covered, cover.best_category.is_some());
        }
    }
}
