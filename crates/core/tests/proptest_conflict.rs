//! Property tests for conflict enumeration: the parallel inverted-index
//! scan must be a pure function of the instance, not of the thread count.

use oct_core::conflict::{analyze, intersecting_pairs};
use oct_core::input::{InputSet, Instance};
use oct_core::itemset::ItemSet;
use oct_core::similarity::Similarity;
use proptest::prelude::*;

/// Instances large enough (> 1024 items) to engage the threaded path of
/// `intersecting_pairs`, with clustered items so pairs actually intersect.
fn arb_wide_instance() -> impl Strategy<Value = Instance> {
    let set = (0u32..40, 3usize..25).prop_flat_map(|(cluster, len)| {
        // Each set draws from a 64-item window; neighbouring windows
        // overlap so intersections occur across cluster boundaries too.
        let base = cluster * 32;
        prop::collection::vec(base..base + 64, len)
    });
    (prop::collection::vec((set, 1u32..10), 2..40), 5u32..=9).prop_map(|(raw, delta10)| {
        let sets: Vec<InputSet> = raw
            .into_iter()
            .map(|(items, w)| InputSet::new(ItemSet::new(items), w as f64))
            .filter(|s| !s.items.is_empty())
            .collect();
        Instance::new(
            40 * 32 + 64,
            sets,
            Similarity::jaccard_threshold(delta10 as f64 / 10.0),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn intersecting_pairs_deterministic_across_threads(
        instance in arb_wide_instance(),
        threads in 2usize..=8,
    ) {
        let serial = intersecting_pairs(&instance, 1);
        let parallel = intersecting_pairs(&instance, threads);
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(
                (s.hi, s.lo, s.inter, s.eff_inter),
                (p.hi, p.lo, p.inter, p.eff_inter),
                "pair mismatch at threads={}", threads
            );
        }
    }

    #[test]
    fn analysis_deterministic_across_threads(
        instance in arb_wide_instance(),
        threads in 2usize..=6,
    ) {
        let serial = analyze(&instance, 1, true);
        let parallel = analyze(&instance, threads, true);
        prop_assert_eq!(serial.conflicts2, parallel.conflicts2);
        prop_assert_eq!(serial.conflicts3, parallel.conflicts3);
        prop_assert_eq!(serial.must_together, parallel.must_together);
        prop_assert_eq!(serial.nestable, parallel.nestable);
    }
}
