//! Fuzz-style robustness tests: malformed, hostile, oversized, and
//! truncated request lines thrown at a live backend AND a live router.
//!
//! The contract under fuzz is the same for both daemons:
//!
//! - every newline-terminated line below the size cap gets exactly one
//!   typed response line (`OK ...` or `ERR ...`) — never a panic, never
//!   silence;
//! - the connection survives rejected lines (verified by a follow-up
//!   `PING` on the same socket);
//! - oversized lines and mid-line disconnects close *that* connection
//!   without leaking the worker — the daemon keeps serving fresh
//!   connections.
//!
//! The vendored proptest has no `prop_oneof`, so line shapes are built
//! from a tagged `(u8, Vec<u8>)` strategy.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::thread;
use std::time::Duration;

use oct_core::{CategoryTree, ROOT};
use oct_resilience::RetryPolicy;
use oct_router::{Router, RouterConfig};
use oct_serve::prelude::*;
use proptest::prelude::*;

fn fuzz_tree() -> CategoryTree {
    let mut t = CategoryTree::new();
    let a = t.add_category(ROOT);
    let b = t.add_category(ROOT);
    t.assign_items(a, 0..8);
    t.assign_items(b, 8..16);
    t
}

/// One backend and one router over it, booted once for the whole test
/// binary (they die with the process; drain is not needed here).
fn endpoints() -> (SocketAddr, SocketAddr) {
    static EP: OnceLock<(SocketAddr, SocketAddr)> = OnceLock::new();
    *EP.get_or_init(|| {
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let server =
            Server::bind(config, ServingTree::build(fuzz_tree(), 16, 0, "fuzz")).expect("bind");
        let backend = server.local_addr().expect("addr");
        thread::spawn(move || server.run());
        let router = Router::bind(RouterConfig {
            workers: 2,
            attempt_timeout: Duration::from_millis(500),
            retry: RetryPolicy::none(),
            shards: vec![vec![backend.to_string()]],
            ..RouterConfig::default()
        })
        .expect("bind router");
        let front = router.local_addr().expect("addr");
        thread::spawn(move || router.run());
        (backend, front)
    })
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let reader = BufReader::new(conn.try_clone().expect("clone"));
    (conn, reader)
}

/// Sends one line, expects exactly one typed response line back.
fn roundtrip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    conn.write_all(line.as_bytes()).expect("write");
    conn.write_all(b"\n").expect("write newline");
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    assert!(
        out.ends_with('\n'),
        "no/truncated response to {line:?}: {out:?}"
    );
    out.trim_end().to_owned()
}

/// Builds a hostile-but-bounded request line from the tagged raw bytes.
/// Newlines are stripped (they would frame extra lines) and the
/// `SHUTDOWN` verb is defanged — the fuzz fleet is shared across cases.
fn build_line(tag: u8, bytes: &[u8]) -> String {
    let printable: String = bytes.iter().map(|&b| char::from(b % 94 + 32)).collect();
    let numbers: String = bytes
        .iter()
        .map(|&b| {
            // A mix of in-range, overflowing, and negative "item ids".
            match b % 4 {
                0 => format!("{}", u64::from(b) * 97),
                1 => format!("{}", u64::from(u32::MAX) + u64::from(b)),
                2 => format!("-{b}"),
                _ => "9".repeat(1 + usize::from(b % 24)),
            }
        })
        .collect::<Vec<_>>()
        .join(",");
    let raw: String = bytes
        .iter()
        .filter(|&&b| b != b'\n' && b != b'\r')
        .map(|&b| char::from(b))
        .collect();
    let line = match tag {
        0 => printable,
        1 => format!("CATEGORIZE {printable}"),
        2 => format!("SCORE {numbers}"),
        3 => format!("categorize {numbers} shard={printable}"),
        4 => raw,
        _ => format!("NAVIGATE {numbers}"),
    };
    if line
        .trim_start()
        .to_ascii_uppercase()
        .starts_with("SHUTDOWN")
    {
        format!("X{line}")
    } else {
        line
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hostile_lines_get_typed_responses_and_never_kill_the_connection(
        tag in 0u8..6,
        bytes in prop::collection::vec(any::<u8>(), 0..80),
    ) {
        let (backend, front) = endpoints();
        let line = build_line(tag, &bytes);
        for addr in [backend, front] {
            let (mut conn, mut reader) = connect(addr);
            if !line.trim().is_empty() {
                let resp = roundtrip(&mut conn, &mut reader, &line);
                prop_assert!(
                    resp.starts_with("OK ") || resp.starts_with("ERR "),
                    "untyped response to {line:?}: {resp:?}"
                );
            }
            // The connection survives whatever that line was.
            let pong = roundtrip(&mut conn, &mut reader, "PING");
            prop_assert!(pong.starts_with("OK PONG"), "dead connection after {line:?}: {pong:?}");
        }
    }
}

#[test]
fn oversized_lines_close_the_connection_but_not_the_daemon() {
    let (backend, front) = endpoints();
    for addr in [backend, front] {
        let (mut conn, mut reader) = connect(addr);
        // Well past the 1 MiB line cap, no newline in sight.
        let chunk = vec![b'7'; 64 * 1024];
        let mut closed = false;
        for _ in 0..40 {
            if conn.write_all(&chunk).is_err() {
                closed = true; // daemon dropped us mid-upload
                break;
            }
        }
        if !closed {
            let _ = conn.write_all(b"\n");
            let mut out = String::new();
            // Either an explicit close (EOF ⇒ Ok(0)) or an error once the
            // daemon resets the socket — never a successful response.
            match reader.read_line(&mut out) {
                Ok(0) => {}
                Ok(_) => panic!("oversized line got a response: {out:?}"),
                Err(_) => {}
            }
        }
        // The daemon itself survived and serves fresh connections.
        let (mut conn, mut reader) = connect(addr);
        let pong = roundtrip(&mut conn, &mut reader, "PING");
        assert!(pong.starts_with("OK PONG"), "{pong}");
    }
}

#[test]
fn truncated_lines_on_disconnect_are_dropped_cleanly() {
    let (backend, front) = endpoints();
    for addr in [backend, front] {
        let (mut conn, _reader) = connect(addr);
        // A partial request with no newline, then a half-close: the daemon
        // must treat it as EOF, answer nothing, and free the worker.
        conn.write_all(b"CATEGORIZE 1,2,3").expect("write");
        conn.shutdown(Shutdown::Write).expect("half-close");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut out = String::new();
        assert_eq!(
            reader.read_line(&mut out).expect("read"),
            0,
            "truncated line must not be answered: {out:?}"
        );
        let (mut conn, mut reader) = connect(addr);
        let pong = roundtrip(&mut conn, &mut reader, "PING");
        assert!(pong.starts_with("OK PONG"), "{pong}");
    }
}
