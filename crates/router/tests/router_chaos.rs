//! Chaos tests: the router fleet behind seeded `oct-chaos` fault proxies.
//!
//! These are the invariant-checked suites from DESIGN.md §18, in-process:
//! while at least one replica per shard stays reachable the router must
//! absorb every injected fault with zero client-visible failures; a
//! whole-shard black-hole must degrade to the typed `partial=1` marker
//! (never an `ERR`, never garbage bytes) deterministically; and once the
//! faults clear, answers must return byte-identical to the pre-fault
//! capture. Every fault schedule is a pure function of its seed, so a
//! failing run replays exactly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use oct_chaos::{classify_line, ChaosConfig, ChaosProxy, FaultPlan, InvariantTally, StopHandle};
use oct_core::{CategoryTree, ROOT};
use oct_obs::Metrics;
use oct_resilience::{BreakerConfig, HealthConfig, HealthState, HedgeConfig, RetryPolicy};
use oct_router::{Replica, Router, RouterConfig, ShardMap};
use oct_serve::{Request, Response, ServeConfig, Server, ServingTree};

/// Items 0..16: `left` = {0..8}, `right` = {8..16}.
fn test_tree() -> CategoryTree {
    let mut t = CategoryTree::new();
    let left = t.add_category(ROOT);
    let right = t.add_category(ROOT);
    t.assign_items(left, 0..8);
    t.assign_items(right, 8..16);
    t.set_label(left, "left half");
    t.set_label(right, "right half");
    t
}

struct Backend {
    addr: SocketAddr,
    drain: oct_serve::DrainHandle,
    join: JoinHandle<std::io::Result<oct_obs::PipelineReport>>,
}

fn start_backend(config: ServeConfig) -> Backend {
    let server =
        Server::bind(config, ServingTree::build(test_tree(), 16, 0, "test")).expect("bind backend");
    let addr = server.local_addr().expect("addr");
    let drain = server.drain_handle();
    let join = thread::spawn(move || server.run());
    Backend { addr, drain, join }
}

fn backend_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        drain_grace: Duration::from_millis(300),
        ..ServeConfig::default()
    }
}

fn kill(backend: Backend) {
    backend.drain.drain();
    let _ = backend.join.join();
}

struct Proxy {
    addr: SocketAddr,
    stop: StopHandle,
    join: JoinHandle<std::io::Result<()>>,
}

/// Interposes one chaos proxy (port 0 unless `listen` pins one) between
/// the router and `upstream`.
fn start_proxy(listen: &str, upstream: SocketAddr, config: ChaosConfig, proxy_id: u32) -> Proxy {
    let proxy = ChaosProxy::bind(
        listen,
        upstream.to_string(),
        FaultPlan::new(config),
        proxy_id,
    )
    .expect("bind proxy");
    let addr = proxy.local_addr().expect("proxy addr");
    let stop = proxy.stop_handle();
    let join = thread::spawn(move || proxy.run());
    Proxy { addr, stop, join }
}

fn stop_proxy(proxy: Proxy) {
    proxy.stop.stop();
    proxy
        .join
        .join()
        .expect("proxy thread exits")
        .expect("proxy accept loop exits cleanly");
}

/// A router over `shards` (tight health/probe knobs so fault detection and
/// recovery land within test timescales).
fn start_router(shards: Vec<Vec<String>>) -> (SocketAddr, oct_router::DrainHandle, JoinHandle<()>) {
    let config = RouterConfig {
        workers: 2,
        attempt_timeout: Duration::from_millis(500),
        deadline_ms: Some(5000),
        retry: RetryPolicy::none(),
        health: HealthConfig {
            suspect_after: 1,
            down_after: 2,
            probe_cooldown: Duration::from_millis(100),
        },
        probe_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(250),
        drain_grace: Duration::from_millis(500),
        metrics: Metrics::new(true),
        shards,
        ..RouterConfig::default()
    };
    let router = Router::bind(config).expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let drain = router.drain_handle();
    let join = thread::spawn(move || {
        let _ = router.run();
    });
    (addr, drain, join)
}

/// A raw line-level client, for byte-identical comparisons.
struct RawClient {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> Self {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let reader = BufReader::new(conn.try_clone().expect("clone"));
        Self { conn, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.conn, "{line}").expect("write");
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("read");
        assert!(out.ends_with('\n'), "truncated response: {out:?}");
        out.trim_end().to_owned()
    }
}

/// A `SCORE` query whose items span every shard of an `n`-shard map.
fn spanning_query(n: usize) -> String {
    let map = ShardMap::new(n);
    let items: Vec<u32> = (0..16).collect();
    let covered: std::collections::BTreeSet<u32> = items.iter().map(|&i| map.shard_of(i)).collect();
    assert_eq!(covered.len(), n, "0..16 must span all {n} shards");
    format!(
        "SCORE {}",
        items
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    )
}

#[test]
fn mixed_faults_are_client_invisible_while_every_shard_has_a_replica() {
    // 2 shards × 2 replicas, every replica behind a mixed-fault proxy
    // (delays, resets at byte offsets, trickle writes). Hedging, failover,
    // and the stale-pool redial must hide all of it: every response is a
    // clean `OK COVER`, no partials, no garbage, no errors.
    let mut backends = Vec::new();
    let mut proxies = Vec::new();
    let mut shards = Vec::new();
    for _ in 0..2 {
        let mut replicas = Vec::new();
        for _ in 0..2 {
            let backend = start_backend(backend_config());
            let proxy_id = proxies.len() as u32;
            let proxy = start_proxy(
                "127.0.0.1:0",
                backend.addr,
                ChaosConfig::mixed(0xC4A0_5EED),
                proxy_id,
            );
            replicas.push(proxy.addr.to_string());
            backends.push(backend);
            proxies.push(proxy);
        }
        shards.push(replicas);
    }
    let (addr, drain, join) = start_router(shards);
    let mut c = RawClient::connect(addr);
    let query = spanning_query(2);

    let mut tally = InvariantTally::new();
    for i in 0..40 {
        let line = c.roundtrip(&query);
        tally.observe(&line);
        assert!(
            line.starts_with("OK COVER") && !line.contains("partial="),
            "query {i} under mixed faults must stay clean: {line}"
        );
    }
    assert!(
        tally.clean(),
        "zero client-visible failures expected: {tally:?}"
    );
    assert_eq!(tally.ok, 40, "{tally:?}");

    drain.drain();
    join.join().expect("router exits");
    for proxy in proxies {
        stop_proxy(proxy);
    }
    for b in backends {
        kill(b);
    }
}

#[test]
fn whole_shard_blackhole_degrades_to_deterministic_typed_partial() {
    // Shard 1's only replica sits behind a black-hole proxy (accepts,
    // never responds). Spanning covers must settle to the typed
    // `partial=1 missing=1` marker — never an ERR, never garbage — and
    // the degraded answer must be byte-identical on every repeat.
    let b0 = start_backend(backend_config());
    let b1 = start_backend(backend_config());
    let p0 = start_proxy("127.0.0.1:0", b0.addr, ChaosConfig::passthrough(1), 0);
    let p1 = start_proxy("127.0.0.1:0", b1.addr, ChaosConfig::blackhole(1), 1);
    let (addr, drain, join) =
        start_router(vec![vec![p0.addr.to_string()], vec![p1.addr.to_string()]]);
    let mut c = RawClient::connect(addr);
    let query = spanning_query(2);

    // Settle: the first attempts burn the 500ms attempt timeout against
    // the black hole until the health machine marks the replica Down.
    let deadline = Instant::now() + Duration::from_secs(15);
    let degraded = loop {
        let line = c.roundtrip(&query);
        let kind = classify_line(&line);
        assert!(
            kind.is_typed(),
            "black-holed shard must never produce garbage: {line:?}"
        );
        assert!(
            !line.starts_with("ERR"),
            "black-holed shard must never produce ERR: {line}"
        );
        if line.contains("partial=1 missing=1") {
            break line;
        }
        assert!(
            Instant::now() < deadline,
            "router never degraded; last: {line}"
        );
        thread::sleep(Duration::from_millis(50));
    };
    for i in 0..10 {
        assert_eq!(
            c.roundtrip(&query),
            degraded,
            "degraded answer {i} must be byte-identical"
        );
    }
    assert!(
        c.roundtrip("STATS").contains("degraded=1"),
        "STATS latches the degraded flag"
    );

    drain.drain();
    join.join().expect("router exits");
    stop_proxy(p0);
    stop_proxy(p1);
    kill(b0);
    kill(b1);
}

#[test]
fn recovery_after_faults_clear_is_byte_identical_to_the_pre_fault_capture() {
    // Phase 1: passthrough proxies, capture the healthy baseline.
    // Phase 2: restart shard 1's proxy on the same port as a black hole,
    // wait for typed degradation. Phase 3: restart it as passthrough
    // again — answers must return to the phase-1 bytes exactly.
    let b0 = start_backend(backend_config());
    let b1 = start_backend(backend_config());
    let p0 = start_proxy("127.0.0.1:0", b0.addr, ChaosConfig::passthrough(1), 0);
    let p1 = start_proxy("127.0.0.1:0", b1.addr, ChaosConfig::passthrough(1), 1);
    let p1_addr = p1.addr;
    let (addr, drain, join) =
        start_router(vec![vec![p0.addr.to_string()], vec![p1_addr.to_string()]]);
    let mut c = RawClient::connect(addr);
    let query = spanning_query(2);

    let baseline = c.roundtrip(&query);
    assert!(baseline.starts_with("OK COVER"), "{baseline}");
    assert!(!baseline.contains("partial="), "{baseline}");

    // Inject: same listen address, black-hole plan.
    stop_proxy(p1);
    let p1 = restart_proxy(p1_addr, b1.addr, ChaosConfig::blackhole(1), 1);
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let line = c.roundtrip(&query);
        if line.contains("partial=1 missing=1") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never degraded; last: {line}"
        );
        thread::sleep(Duration::from_millis(50));
    }

    // Clear: same listen address, passthrough plan. The probe loop must
    // re-admit the replica and answers must return to the old bytes.
    stop_proxy(p1);
    let p1 = restart_proxy(p1_addr, b1.addr, ChaosConfig::passthrough(1), 1);
    let deadline = Instant::now() + Duration::from_secs(15);
    let recovered = loop {
        let line = c.roundtrip(&query);
        if !line.contains("partial=") {
            break line;
        }
        assert!(
            Instant::now() < deadline,
            "shard never recovered; last: {line}"
        );
        thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        recovered, baseline,
        "post-recovery answers must be byte-identical to the pre-fault capture"
    );

    drain.drain();
    join.join().expect("router exits");
    stop_proxy(p0);
    stop_proxy(p1);
    kill(b0);
    kill(b1);
}

/// Rebinds a chaos proxy on a just-freed concrete port (retrying briefly —
/// the old listener's close may still be settling).
fn restart_proxy(listen: SocketAddr, upstream: SocketAddr, config: ChaosConfig, id: u32) -> Proxy {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match ChaosProxy::bind(
            &listen.to_string(),
            upstream.to_string(),
            FaultPlan::new(config.clone()),
            id,
        ) {
            Ok(proxy) => {
                let addr = proxy.local_addr().expect("proxy addr");
                let stop = proxy.stop_handle();
                let join = thread::spawn(move || proxy.run());
                return Proxy { addr, stop, join };
            }
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot rebind {listen}: {e}");
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn stale_pooled_connection_redials_without_a_health_or_breaker_penalty() {
    // A backend that courteously retires every connection after one
    // request makes each pooled connection stale on first reuse. The
    // replica must absorb that with a silent redial: every call succeeds,
    // health never leaves Up, and the breaker records no trip.
    let backend = start_backend(ServeConfig {
        max_requests: 1,
        ..backend_config()
    });
    let metrics = Metrics::new(true);
    let replica = Replica::new(
        backend.addr.to_string(),
        BreakerConfig::default(),
        HealthConfig::default(),
        HedgeConfig::default(),
        &metrics,
    );
    let stale = metrics.counter(&format!("router/replica/{}/pool_stale", backend.addr));
    for i in 0..3 {
        let resp = replica
            .call(&Request::Ping, Duration::from_secs(2))
            .unwrap_or_else(|e| panic!("call {i} through a retiring backend failed: {e}"));
        assert!(matches!(resp, Response::Pong { .. }), "{resp:?}");
    }
    assert_eq!(
        replica.health.state(),
        HealthState::Up,
        "pool staleness is not a replica health signal"
    );
    assert_eq!(replica.health.downs(), 0);
    assert!(
        stale.get() >= 1,
        "reused-then-retired connections must be detected as stale"
    );
    kill(backend);
}

#[test]
fn router_closes_slowloris_connections_without_poisoning_the_fleet() {
    // A client that connects and trickles nothing must be cut off once
    // its cumulative idle budget is spent — silently, with no ERR line —
    // while a well-behaved client on the same router keeps working.
    let backend = start_backend(backend_config());
    let config = RouterConfig {
        workers: 2,
        idle_timeout: Duration::from_millis(200),
        drain_grace: Duration::from_millis(500),
        metrics: Metrics::new(true),
        shards: vec![vec![backend.addr.to_string()]],
        ..RouterConfig::default()
    };
    let router = Router::bind(config).expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let drain = router.drain_handle();
    let join = thread::spawn(move || {
        let _ = router.run();
    });

    let slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // Half a request, then silence: the idle clock must still fire.
    (&slow).write_all(b"PI").expect("partial write");
    let mut reader = BufReader::new(slow);
    let mut out = String::new();
    let n = reader.read_line(&mut out).expect("read to EOF");
    assert_eq!(n, 0, "idle close is silent, not an ERR line: {out:?}");

    let mut polite = RawClient::connect(addr);
    assert!(polite.roundtrip("PING").starts_with("OK PONG"));

    drain.drain();
    join.join().expect("router exits");
    kill(backend);
}
