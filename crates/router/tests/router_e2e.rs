//! End-to-end router tests: real backends on real sockets behind a real
//! router, driven over TCP. Each component binds port 0 and drains via
//! its own handle so concurrent tests never interfere.
//!
//! The heart of the suite is the differential determinism contract: for
//! any *fixed* set of live shards, identical queries through the router
//! produce byte-identical response lines — full fleet, degraded fleet,
//! and recovered fleet each being such a fixed set.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use oct_core::{CategoryTree, ROOT};
use oct_obs::{Metrics, PipelineReport};
use oct_resilience::{HealthConfig, RetryPolicy};
use oct_router::{Router, RouterConfig, ShardMap};
use oct_serve::prelude::*;

/// Items 0..16: `left` = {0..8}, `right` = {8..16}.
fn test_tree() -> CategoryTree {
    let mut t = CategoryTree::new();
    let left = t.add_category(ROOT);
    let right = t.add_category(ROOT);
    t.assign_items(left, 0..8);
    t.assign_items(right, 8..16);
    t.set_label(left, "left half");
    t.set_label(right, "right half");
    t
}

struct Backend {
    addr: SocketAddr,
    drain: DrainHandle,
    join: JoinHandle<std::io::Result<PipelineReport>>,
}

/// Boots one backend replica serving [`test_tree`] on `addr` (use
/// `"127.0.0.1:0"` for a fresh port, or a concrete address to restart a
/// killed replica on its old port).
fn start_backend(addr: &str) -> Backend {
    let config = ServeConfig {
        addr: addr.to_owned(),
        workers: 2,
        drain_grace: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server =
        Server::bind(config, ServingTree::build(test_tree(), 16, 0, "test")).expect("bind backend");
    let addr = server.local_addr().expect("addr");
    let drain = server.drain_handle();
    let join = thread::spawn(move || server.run());
    Backend { addr, drain, join }
}

fn kill(backend: Backend) {
    backend.drain.drain();
    let _ = backend.join.join();
}

/// Boots a fleet of `shards.len()` shards with `shards[s]` replicas each,
/// plus a router fronting them. Health/probe knobs are tightened so
/// failure detection and recovery land within test timescales.
fn start_fleet(per_shard: &[usize]) -> (Vec<Vec<Backend>>, Router) {
    let fleet: Vec<Vec<Backend>> = per_shard
        .iter()
        .map(|&n| (0..n).map(|_| start_backend("127.0.0.1:0")).collect())
        .collect();
    let shards: Vec<Vec<String>> = fleet
        .iter()
        .map(|replicas| replicas.iter().map(|b| b.addr.to_string()).collect())
        .collect();
    let config = RouterConfig {
        workers: 2,
        attempt_timeout: Duration::from_millis(500),
        deadline_ms: Some(3000),
        retry: RetryPolicy::none(),
        health: HealthConfig {
            suspect_after: 1,
            down_after: 2,
            probe_cooldown: Duration::from_millis(100),
        },
        probe_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(250),
        drain_grace: Duration::from_millis(500),
        metrics: Metrics::new(true),
        shards,
        ..RouterConfig::default()
    };
    let router = Router::bind(config).expect("bind router");
    (fleet, router)
}

fn spawn_router(router: Router) -> (SocketAddr, oct_router::DrainHandle, JoinHandle<()>) {
    let addr = router.local_addr().expect("router addr");
    let drain = router.drain_handle();
    let join = thread::spawn(move || {
        let _ = router.run();
    });
    (addr, drain, join)
}

/// A raw line-level client, for byte-identical comparisons.
struct RawClient {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> Self {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let reader = BufReader::new(conn.try_clone().expect("clone"));
        Self { conn, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.conn, "{line}").expect("write");
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("read");
        assert!(out.ends_with('\n'), "truncated response: {out:?}");
        out.trim_end().to_owned()
    }
}

/// Items guaranteed to span every shard of an `n`-shard map.
fn spanning_items(n: usize) -> Vec<u32> {
    let map = ShardMap::new(n);
    let mut items: Vec<u32> = (0..16).collect();
    let covered: std::collections::BTreeSet<u32> = items.iter().map(|&i| map.shard_of(i)).collect();
    assert_eq!(covered.len(), n, "0..16 must span all {n} shards");
    items.sort_unstable();
    items
}

/// Items owned by exactly one shard of an `n`-shard map.
fn items_on_shard(n: usize, shard: u32) -> Vec<u32> {
    let map = ShardMap::new(n);
    (0..16).filter(|&i| map.shard_of(i) == shard).collect()
}

#[test]
fn routes_the_full_protocol() {
    let (fleet, router) = start_fleet(&[1, 1]);
    let (addr, drain, join) = spawn_router(router);
    let mut c = RawClient::connect(addr);

    let pong = c.roundtrip("PING");
    assert!(pong.starts_with("OK PONG"), "{pong}");

    // A query landing entirely in one category matches the single-server
    // answer: every replica serves the full tree, so the merge of shard
    // slices reproduces the cover.
    let cover = c.roundtrip("CATEGORIZE 0,1,2,3,4,5,6,7");
    assert!(cover.contains("cat=1"), "{cover}");
    assert!(cover.contains("covered=1"), "{cover}");
    assert!(cover.contains("label=left half"), "{cover}");
    assert!(!cover.contains("partial="), "full fleet is never partial");

    let score = c.roundtrip("SCORE 8,9,10,11");
    assert!(score.starts_with("OK COVER"), "{score}");
    assert!(!score.contains("label="), "SCORE is label-free: {score}");

    let nav = c.roundtrip("NAVIGATE 0");
    assert_eq!(nav, "OK NAV cat=0 children=1,2");

    let nav_bad = c.roundtrip("NAVIGATE 999");
    assert!(nav_bad.starts_with("ERR bad-request"), "{nav_bad}");

    let stats = c.roundtrip("STATS");
    assert!(stats.contains("categories=3"), "{stats}");
    assert!(stats.contains("degraded=0"), "healthy fleet: {stats}");

    let empty = c.roundtrip("SCORE");
    assert!(empty.contains("cat=none"), "canonical empty cover: {empty}");

    assert_eq!(c.roundtrip("SHUTDOWN"), "OK DRAINING");
    join.join().expect("router exits");
    drop(drain);
    for replicas in fleet {
        for b in replicas {
            kill(b);
        }
    }
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let (fleet, router) = start_fleet(&[1]);
    let (addr, drain, join) = spawn_router(router);
    let mut c = RawClient::connect(addr);

    assert!(c.roundtrip("FROBNICATE 1,2").starts_with("ERR bad-request"));
    assert!(c
        .roundtrip("CATEGORIZE 1,x,3")
        .starts_with("ERR bad-request"));
    assert!(c
        .roundtrip("NAVIGATE banana")
        .starts_with("ERR bad-request"));
    // The connection is still serviceable after every rejection.
    assert!(c.roundtrip("PING").starts_with("OK PONG"));

    drain.drain();
    join.join().expect("router exits");
    for replicas in fleet {
        for b in replicas {
            kill(b);
        }
    }
}

#[test]
fn replica_loss_fails_over_with_zero_client_visible_failures() {
    // Two replicas per shard: killing one replica of each shard must be
    // invisible — no errors, no PARTIAL markers.
    let (mut fleet, router) = start_fleet(&[2, 2]);
    let (addr, drain, join) = spawn_router(router);
    let mut c = RawClient::connect(addr);
    let items = spanning_items(2);
    let query = format!(
        "SCORE {}",
        items
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );

    let baseline = c.roundtrip(&query);
    assert!(baseline.starts_with("OK COVER"), "{baseline}");

    // Kill the first replica of every shard mid-stream.
    for replicas in &mut fleet {
        kill(replicas.remove(0));
    }

    for i in 0..30 {
        let line = c.roundtrip(&query);
        assert_eq!(
            line, baseline,
            "query {i} after replica loss must be byte-identical"
        );
    }

    drain.drain();
    join.join().expect("router exits");
    for replicas in fleet {
        for b in replicas {
            kill(b);
        }
    }
}

#[test]
fn whole_shard_loss_degrades_to_typed_partial_and_recovers_byte_identical() {
    // One replica per shard: killing shard 1's only replica makes shard 1
    // unreachable. Covers spanning it must degrade to the typed PARTIAL
    // marker (never an error), deterministically; after the replica comes
    // back the answers must return to the pre-kill bytes.
    let (mut fleet, router) = start_fleet(&[1, 1, 1]);
    let (addr, drain, join) = spawn_router(router);
    let mut c = RawClient::connect(addr);
    let items = spanning_items(3);
    let query = format!(
        "SCORE {}",
        items
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );

    let healthy = c.roundtrip(&query);
    assert!(healthy.starts_with("OK COVER"), "{healthy}");
    assert!(!healthy.contains("partial="), "{healthy}");

    let dead_shard = 1u32;
    let dead_addr = fleet[dead_shard as usize][0].addr;
    kill(fleet[dead_shard as usize].remove(0));

    // Degraded: every answer is a typed PARTIAL naming the dead shard,
    // and the degraded answers are byte-identical to each other.
    let degraded = c.roundtrip(&query);
    assert!(
        degraded.starts_with("OK COVER"),
        "never an error: {degraded}"
    );
    assert!(
        degraded.contains(&format!("partial=1 missing={dead_shard}")),
        "typed marker names the dead shard: {degraded}"
    );
    assert!(degraded.contains("degraded=1"), "{degraded}");
    for i in 0..10 {
        assert_eq!(
            c.roundtrip(&query),
            degraded,
            "degraded answer {i} must be deterministic"
        );
    }

    // Queries that never touch the dead shard stay full-fidelity.
    let live_only = items_on_shard(3, 0);
    assert!(!live_only.is_empty(), "shard 0 owns some of 0..16");
    let live_query = format!(
        "SCORE {}",
        live_only
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let live_line = c.roundtrip(&live_query);
    assert!(live_line.starts_with("OK COVER"), "{live_line}");
    assert!(
        !live_line.contains("partial="),
        "untouched shards are not partial: {live_line}"
    );

    // STATS latches the sticky degraded flag while the shard is down.
    assert!(c.roundtrip("STATS").contains("degraded=1"));

    // Recovery: restart the replica on its old port and wait for the
    // probe loop to re-admit it.
    fleet[dead_shard as usize].push(restart_backend(dead_addr));
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered = loop {
        let line = c.roundtrip(&query);
        if !line.contains("partial=") {
            break line;
        }
        assert!(
            Instant::now() < deadline,
            "shard never recovered; last: {line}"
        );
        thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        recovered, healthy,
        "post-recovery answers return to the pre-kill bytes"
    );
    // Sticky: the router remembers it served degraded answers.
    assert!(c.roundtrip("STATS").contains("degraded=1"));

    drain.drain();
    join.join().expect("router exits");
    for replicas in fleet {
        for b in replicas {
            kill(b);
        }
    }
}

/// Rebinds a backend on a just-freed concrete port (retrying briefly —
/// the old listener's close may still be settling).
fn restart_backend(addr: SocketAddr) -> Backend {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let config = ServeConfig {
            addr: addr.to_string(),
            workers: 2,
            drain_grace: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        match Server::bind(config, ServingTree::build(test_tree(), 16, 0, "test")) {
            Ok(server) => {
                let addr = server.local_addr().expect("addr");
                let drain = server.drain_handle();
                let join = thread::spawn(move || server.run());
                return Backend { addr, drain, join };
            }
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot rebind {addr}: {e}");
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn navigate_topk_is_byte_identical_across_runs_and_replicas() {
    let (fleet, router) = start_fleet(&[2, 2]);
    let (addr, drain, join) = spawn_router(router);
    let mut c = RawClient::connect(addr);

    // Left half exactly: left J = 1.0, root J = 8/16 = 0.5, right drops
    // below the cutoff.
    let line = "NAVIGATE 3 items=0,1,2,3,4,5,6,7";
    let first = c.roundtrip(line);
    assert!(first.starts_with("OK TOPK "), "{first}");
    assert!(
        first.contains("results=1:1.000000,0:0.500000"),
        "exact calibrated ranking: {first}"
    );
    assert_eq!(c.roundtrip(line), first, "same replica, same bytes");

    // Kill three of the four replicas: whoever answers now, the ranking
    // must be bit-for-bit the same — the ANN index is seed-deterministic,
    // so every replica ranks identically.
    let mut fleet = fleet;
    let survivors = vec![fleet[1].pop().expect("replica")];
    for replicas in fleet {
        for b in replicas {
            kill(b);
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let failed_over = c.roundtrip(line);
        if failed_over == first {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "failover answer diverged: {failed_over} != {first}"
        );
        thread::sleep(Duration::from_millis(100));
    }

    assert_eq!(c.roundtrip("SHUTDOWN"), "OK DRAINING");
    join.join().expect("router exits");
    drop(drain);
    for b in survivors {
        kill(b);
    }
}
