//! The router daemon: a fault-tolerant scatter-gather front-end over a
//! sharded, replicated `oct-serve` fleet.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ─▶ admission (BoundedQueue, typed OVERLOADED shed — same as oct-serve)
//!              ▼
//!           worker pops connection; per request line:
//!              CATEGORIZE/SCORE ─▶ partition items by shard (consistent hash)
//!                 │  per owning shard, in parallel:
//!                 │    candidates = replicas in rendezvous order,
//!                 │                 fresh + available first
//!                 │    breaker.try_acquire ─▶ hedged primary
//!                 │       │ no answer within the p90-tracked delay
//!                 │       ▼
//!                 │    hedge on the next candidate (first OK wins,
//!                 │    loser cancelled); then sequential failover,
//!                 │    jittered retry sweeps, all under one Budget
//!                 ▼
//!              deterministic merge; dead shards ⇒ typed PARTIAL marker
//! ```
//!
//! # Degradation contract
//!
//! The router never invents an error when *any* owning shard can answer:
//! a fleet with a dead shard yields `partial=1 missing=<ids>` covers that
//! are a deterministic merge of the survivors — for a fixed set of live
//! shards, repeated identical queries produce byte-identical lines. Once
//! every replica of every owning shard is unreachable the request fails
//! with a typed `ERR unavailable`.
//!
//! A background probe loop (`STATS` per replica) drives each replica's
//! health machine Up→Suspect→Down→Probing and re-admits recovered
//! replicas; probes also observe tree epochs, so after a partial `SWAP`
//! the router prefers replicas serving the newest epoch a shard has.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use oct_obs::{Metrics, PipelineReport};
use oct_resilience::{run_hedged, Budget, CancelToken, HedgeReason, HedgeWinner, RetryPolicy};
use oct_resilience::{BreakerConfig, HealthConfig, HedgeConfig};
use oct_serve::queue::{BoundedQueue, Push};
use oct_serve::server::{LineReader, NextLine};
use oct_serve::{ErrorCode, Request, Response};

use crate::merge::{merge_covers, SubCover};
use crate::replica::Replica;
use crate::shard::{rendezvous_order, request_key, ShardMap};

/// Worker queue-pop poll interval (drain responsiveness).
const POP_INTERVAL: Duration = Duration::from_millis(25);
/// Socket read timeout — idle connections notice drain at this cadence.
const READ_INTERVAL: Duration = Duration::from_millis(50);
/// Accept-loop poll interval when no connection is pending.
const ACCEPT_INTERVAL: Duration = Duration::from_millis(5);
/// `SWAP` fan-out allows this many attempt-timeouts per replica (a swap
/// loads and indexes a tree file; it is not a point query).
const SWAP_TIMEOUT_FACTOR: u32 = 8;

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (port 0 picks a free port).
    pub addr: String,
    /// Worker threads — concurrent client connections being served.
    pub workers: usize,
    /// Admission-queue capacity (typed `OVERLOADED` beyond it).
    pub queue_capacity: usize,
    /// Per-attempt sub-request timeout (connect + read, one replica).
    pub attempt_timeout: Duration,
    /// Overall per-client-request deadline; `None` = unlimited (drain
    /// still bounds it).
    pub deadline_ms: Option<u64>,
    /// Jittered retry policy for whole failover sweeps over a shard.
    pub retry: RetryPolicy,
    /// Per-replica circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Per-replica health-machine thresholds.
    pub health: HealthConfig,
    /// Hedging policy (latency quantile, delay clamps).
    pub hedge: HedgeConfig,
    /// Cadence of the background health-probe loop.
    pub probe_interval: Duration,
    /// Timeout for one health probe.
    pub probe_timeout: Duration,
    /// How long drain waits for in-flight work before cancelling it.
    pub drain_grace: Duration,
    /// Slowloris guard: cap on the cumulative time a client connection
    /// may take to deliver its next complete request line (the socket
    /// read timeout resets per dribbled byte; this deadline does not).
    pub idle_timeout: Duration,
    /// Requests served per client connection before a courteous close
    /// (`0` = unlimited).
    pub max_requests: usize,
    /// Metrics sink (pass [`Metrics::disabled`] to opt out).
    pub metrics: Metrics,
    /// Where to write the final [`PipelineReport`] JSON on exit.
    pub metrics_out: Option<PathBuf>,
    /// The fleet: `shards[s]` lists the replica addresses of shard `s`.
    pub shards: Vec<Vec<String>>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            attempt_timeout: Duration::from_millis(250),
            deadline_ms: Some(1000),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            health: HealthConfig::default(),
            hedge: HedgeConfig::default(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(100),
            drain_grace: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            max_requests: 10_000,
            metrics: Metrics::disabled(),
            metrics_out: None,
            shards: Vec::new(),
        }
    }
}

/// The fleet as the router sees it: the item→shard ring plus per-shard
/// replica lists.
struct Topology {
    map: ShardMap,
    shards: Vec<Vec<Arc<Replica>>>,
}

impl Topology {
    fn all(&self) -> impl Iterator<Item = &Arc<Replica>> {
        self.shards.iter().flatten()
    }

    /// The newest epoch any replica of `shard` has been observed serving.
    fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard]
            .iter()
            .map(|r| r.health.epoch())
            .max()
            .unwrap_or(0)
    }

    /// The fleet consistency floor: the minimum over shards of each
    /// shard's best-known epoch.
    fn fleet_epoch(&self) -> u64 {
        (0..self.shards.len())
            .map(|s| self.shard_epoch(s))
            .min()
            .unwrap_or(0)
    }
}

struct Shared {
    config: RouterConfig,
    topology: Topology,
    queue: BoundedQueue<TcpStream>,
    metrics: Metrics,
    shutdown: AtomicBool,
    drain_token: CancelToken,
    in_flight: AtomicUsize,
    next_seed: AtomicU64,
    /// Sticky: latched the first time any cover was served partial, and
    /// reported via `STATS degraded=1` (mirrors the backend's sticky
    /// degraded flag) so one probe spots a router that has been limping.
    served_partial: AtomicBool,
}

impl Shared {
    fn draining(&self) -> bool {
        // The process-global signal flag is OR'd in (same contract as the
        // backend) so the CLI's SIGTERM wiring drains the router too.
        self.shutdown.load(Ordering::Relaxed) || oct_serve::signal::shutdown_requested()
    }

    fn request_drain(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn request_budget(&self) -> Budget {
        let deadline = self.config.deadline_ms.map(Duration::from_millis);
        Budget::with_deadline_and_token(deadline, self.drain_token.clone())
    }
}

/// A bound, not-yet-running router. [`Router::run`] blocks until drain.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Triggers graceful drain from another thread (signal wiring, tests).
#[derive(Clone)]
pub struct DrainHandle {
    shared: Arc<Shared>,
}

impl DrainHandle {
    /// Begins graceful drain, as if `SHUTDOWN` had arrived.
    pub fn drain(&self) {
        self.shared.request_drain();
    }
}

impl Router {
    /// Binds the listener and builds the replica fleet from
    /// [`RouterConfig::shards`].
    ///
    /// # Errors
    /// `InvalidInput` when the shard map is empty or any shard has no
    /// replicas; otherwise socket errors from binding.
    pub fn bind(config: RouterConfig) -> io::Result<Self> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        if let Some(empty) = config.shards.iter().position(Vec::is_empty) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {empty} has no replicas"),
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let topology = Topology {
            map: ShardMap::new(config.shards.len()),
            shards: config
                .shards
                .iter()
                .map(|replicas| {
                    replicas
                        .iter()
                        .map(|addr| {
                            Arc::new(Replica::new(
                                addr.clone(),
                                config.breaker.clone(),
                                config.health.clone(),
                                config.hedge.clone(),
                                &config.metrics,
                            ))
                        })
                        .collect()
                })
                .collect(),
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: config.metrics.clone(),
            topology,
            shutdown: AtomicBool::new(false),
            drain_token: CancelToken::new(),
            in_flight: AtomicUsize::new(0),
            next_seed: AtomicU64::new(0x243F_6A88_85A3_08D3),
            served_partial: AtomicBool::new(false),
            config,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can trigger graceful drain from another thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs accept → scatter-gather → drain to completion and returns the
    /// final metrics report (written to `metrics_out` if configured).
    pub fn run(self) -> io::Result<PipelineReport> {
        let Self { listener, shared } = self;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("oct-router-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let prober = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("oct-router-prober".to_owned())
                .spawn(move || probe_loop(&shared))
                .expect("spawn prober")
        };

        while !shared.draining() {
            match listener.accept() {
                Ok((conn, _peer)) => {
                    shared.metrics.incr("router/accepted");
                    let _ = conn.set_nodelay(true);
                    admit(&shared, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            shared
                .metrics
                .gauge("router/queue_depth", shared.queue.len() as f64);
        }

        shared.queue.close();
        let grace_end = Instant::now() + shared.config.drain_grace;
        while (shared.in_flight.load(Ordering::Relaxed) > 0 || !shared.queue.is_empty())
            && Instant::now() < grace_end
        {
            thread::sleep(Duration::from_millis(5));
        }
        shared.drain_token.cancel();
        for w in workers {
            let _ = w.join();
        }
        let _ = prober.join();

        let report = shared.metrics.report();
        if let Some(path) = &shared.config.metrics_out {
            std::fs::write(path, report.to_json())?;
        }
        Ok(report)
    }
}

/// The active health-probe loop: every `probe_interval`, one `STATS`
/// probe per replica (the machine itself limits Down replicas to a
/// single prober per cooldown).
fn probe_loop(shared: &Shared) {
    while !shared.draining() {
        for replica in shared.topology.all() {
            replica.probe(shared.config.probe_timeout);
        }
        thread::sleep(shared.config.probe_interval);
    }
}

fn admit(shared: &Shared, conn: TcpStream) {
    match shared.queue.try_push(conn) {
        Push::Ok => {}
        Push::Full(mut conn, depth) => {
            shared.metrics.incr("router/shed");
            let line = Response::Overloaded { queue_depth: depth }.encode();
            let _ = conn.set_nonblocking(false);
            let _ = writeln!(conn, "{line}");
        }
        Push::Closed(mut conn) => {
            let line = Response::Error {
                code: ErrorCode::Unavailable,
                message: "draining".to_owned(),
            }
            .encode();
            let _ = conn.set_nonblocking(false);
            let _ = writeln!(conn, "{line}");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop_timeout(POP_INTERVAL) {
            Some(conn) => {
                shared.in_flight.fetch_add(1, Ordering::Relaxed);
                let _ = serve_connection(shared, conn);
                shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            }
            None if shared.queue.is_closed() => return,
            None => {}
        }
    }
}

/// Serves request lines on one connection — the same framing (and 1 MiB
/// line cap) as the backend, so one malformed line yields a typed error,
/// never a dropped connection.
fn serve_connection(shared: &Shared, mut conn: TcpStream) -> io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(READ_INTERVAL))?;
    let mut reader = LineReader::new();
    let mut served = 0usize;
    loop {
        // Slowloris guard, same shape as the backend: the deadline caps
        // the cumulative wait for a complete line, which dribbled bytes
        // reset the socket timeout against but not this.
        let deadline = Instant::now() + shared.config.idle_timeout;
        let line = match reader.next_line_within(&mut conn, || shared.draining(), Some(deadline)) {
            Ok(NextLine::Line(line)) => line,
            Ok(NextLine::Closed) => return Ok(()),
            Ok(NextLine::TimedOut) => {
                shared.metrics.incr("router/idle_closed");
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Ok(request) => {
                let started = Instant::now();
                shared.metrics.incr("router/requests");
                let resp = handle_request(shared, request);
                shared.metrics.observe("router/latency", started.elapsed());
                resp
            }
            Err(message) => Response::Error {
                code: ErrorCode::BadRequest,
                message,
            },
        };
        let done = matches!(response, Response::Draining);
        writeln!(conn, "{}", response.encode())?;
        // Same contract as the backend: drain closes busy connections
        // after the response in hand, so pipelining clients cannot pin a
        // worker past drain.
        if done || shared.draining() {
            return Ok(());
        }
        served += 1;
        let cap = shared.config.max_requests;
        if cap > 0 && served >= cap {
            shared.metrics.incr("router/conn_retired");
            return Ok(());
        }
    }
}

fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        // Router PING answers locally: it is the *router's* liveness, and
        // the epoch is the fleet floor the probe loop has observed.
        Request::Ping => Response::Pong {
            epoch: shared.topology.fleet_epoch(),
        },
        Request::Categorize { items, .. } => fanout_cover(shared, &items, true),
        Request::Score { items, .. } => fanout_cover(shared, &items, false),
        Request::Navigate { cat } => navigate(shared, cat),
        Request::NavigateTopK { k, items, ef } => navigate_topk(shared, k, items, ef),
        Request::Stats => fanout_stats(shared),
        Request::Swap { path } => broadcast_swap(shared, &path),
        Request::Shutdown => {
            shared.request_drain();
            Response::Draining
        }
    }
}

/// Scatter a cover query across the owning shards, gather, merge.
fn fanout_cover(shared: &Shared, items: &[u32], with_label: bool) -> Response {
    let started = Instant::now();
    let parts = shared.topology.map.partition(items);
    if parts.is_empty() {
        // No items ⇒ no owning shards: the canonical empty cover, same
        // shape a single backend gives an empty query.
        return Response::Cover {
            epoch: shared.topology.fleet_epoch(),
            cat: None,
            similarity: 0.0,
            precision: 1.0,
            covered: false,
            degraded: false,
            missing: Vec::new(),
            label: None,
        };
    }
    let budget = shared.request_budget();
    shared
        .metrics
        .gauge("router/fanout_width", parts.len() as f64);
    let results: Vec<(u32, Result<Response, String>)> = thread::scope(|scope| {
        let budget = &budget;
        let handles: Vec<_> = parts
            .iter()
            .map(|(shard, slice)| {
                let sub = if with_label {
                    Request::Categorize {
                        items: slice.clone(),
                        shard: Some(*shard),
                    }
                } else {
                    Request::Score {
                        items: slice.clone(),
                        shard: Some(*shard),
                    }
                };
                let key = request_key(slice);
                scope.spawn(move || (*shard, shard_call(shared, *shard, sub, key, budget)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out thread panicked"))
            .collect()
    });
    let mut subs = Vec::new();
    let mut missing = Vec::new();
    for (shard, result) in results {
        match result {
            Ok(resp) => match SubCover::from_response(shard, &resp) {
                Some(sub) => subs.push(sub),
                None => missing.push(shard),
            },
            Err(_) => missing.push(shard),
        }
    }
    let merged = merge_covers(&subs, missing);
    if merged.is_partial() {
        shared.metrics.incr("router/partial");
        shared.served_partial.store(true, Ordering::Relaxed);
    }
    shared
        .metrics
        .observe("router/fanout_latency", started.elapsed());
    merged
}

/// `NAVIGATE` needs no scatter — every replica serves the full tree — so
/// it goes to the whole-fleet rendezvous choice for the category key.
fn navigate(shared: &Shared, cat: u32) -> Response {
    let candidates: Vec<Arc<Replica>> = shared.topology.all().cloned().collect();
    let order = rendezvous_order(candidates.len(), u64::from(cat) ^ 0x5851_F42D_4C95_7F2D);
    let ordered: Vec<Arc<Replica>> = order.into_iter().map(|i| candidates[i].clone()).collect();
    let budget = shared.request_budget();
    match call_with_failover(shared, &ordered, &Request::Navigate { cat }, &budget) {
        Ok(resp) => resp,
        Err(message) => Response::Error {
            code: ErrorCode::Unavailable,
            message,
        },
    }
}

/// Top-k `NAVIGATE` is whole-tree like the browse form: any replica can
/// answer for the full fleet (the ANN index is seed-deterministic, so all
/// replicas rank identically). Rendezvous on the query key spreads distinct
/// queries across the fleet while keeping each query's home stable.
fn navigate_topk(shared: &Shared, k: usize, items: Vec<u32>, ef: Option<usize>) -> Response {
    let candidates: Vec<Arc<Replica>> = shared.topology.all().cloned().collect();
    let key = request_key(&items) ^ (k as u64).wrapping_mul(0x5851_F42D_4C95_7F2D);
    let order = rendezvous_order(candidates.len(), key);
    let ordered: Vec<Arc<Replica>> = order.into_iter().map(|i| candidates[i].clone()).collect();
    let budget = shared.request_budget();
    let request = Request::NavigateTopK { k, items, ef };
    match call_with_failover(shared, &ordered, &request, &budget) {
        Ok(resp) => resp,
        Err(message) => Response::Error {
            code: ErrorCode::Unavailable,
            message,
        },
    }
}

/// Fleet `STATS`: every shard is asked (rendezvous per shard); the merged
/// answer reports the minimum epoch (consistency floor) and a degraded
/// flag that ORs backend degradation, unreachable shards, and the
/// router's own sticky partial latch.
fn fanout_stats(shared: &Shared) -> Response {
    let budget = shared.request_budget();
    let shard_count = shared.topology.shards.len();
    let results: Vec<Option<Response>> = thread::scope(|scope| {
        let budget = &budget;
        let handles: Vec<_> = (0..shard_count)
            .map(|shard| {
                scope.spawn(move || {
                    shard_call(
                        shared,
                        shard as u32,
                        Request::Stats,
                        0x9E37_79B9 ^ shard as u64,
                        budget,
                    )
                    .ok()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stats fan-out thread panicked"))
            .collect()
    });
    let mut merged: Option<(u64, usize, usize, u32)> = None;
    let mut any_degraded = false;
    let mut unreachable = 0usize;
    for result in results {
        match result {
            Some(Response::Stats {
                epoch,
                categories,
                max_depth,
                items,
                degraded,
            }) => {
                any_degraded |= degraded;
                merged = Some(match merged {
                    None => (epoch, categories, max_depth, items),
                    Some((e, c, d, i)) => (e.min(epoch), c, d, i),
                });
            }
            _ => unreachable += 1,
        }
    }
    match merged {
        Some((epoch, categories, max_depth, items)) => Response::Stats {
            epoch,
            categories,
            max_depth,
            items,
            degraded: any_degraded
                || unreachable > 0
                || shared.served_partial.load(Ordering::Relaxed),
        },
        None => Response::Error {
            code: ErrorCode::Unavailable,
            message: "no shard reachable".to_owned(),
        },
    }
}

/// `SWAP` broadcasts to *every* replica of every shard in parallel. A
/// partial broadcast leaves the fleet mixed-epoch — the response is a
/// typed error listing the failures, and the epoch-preference in
/// candidate ordering keeps routing consistent until the stragglers are
/// re-swapped (probes keep observing their epochs).
fn broadcast_swap(shared: &Shared, path: &str) -> Response {
    let timeout = shared.config.attempt_timeout * SWAP_TIMEOUT_FACTOR;
    let outcomes: Vec<(String, Result<Response, String>)> = thread::scope(|scope| {
        let handles: Vec<_> = shared
            .topology
            .all()
            .map(|replica| {
                let replica = Arc::clone(replica);
                let request = Request::Swap {
                    path: path.to_owned(),
                };
                scope.spawn(move || (replica.addr.clone(), replica.call(&request, timeout)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("swap fan-out thread panicked"))
            .collect()
    });
    let mut published: Option<(u64, usize)> = None;
    let mut failed: Vec<String> = Vec::new();
    for (addr, outcome) in outcomes {
        match outcome {
            Ok(Response::Swapped { epoch, categories }) => {
                published = Some(match published {
                    None => (epoch, categories),
                    Some((e, c)) => (e.min(epoch), c),
                });
            }
            Ok(_) | Err(_) => failed.push(addr),
        }
    }
    match (published, failed.is_empty()) {
        (Some((epoch, categories)), true) => Response::Swapped { epoch, categories },
        (Some(_), false) => Response::Error {
            code: ErrorCode::Internal,
            message: format!("swap partially published; failed: {}", failed.join(", ")),
        },
        (None, _) => Response::Error {
            code: ErrorCode::Unavailable,
            message: format!("swap published nowhere; failed: {}", failed.join(", ")),
        },
    }
}

/// One shard sub-request: rendezvous-ordered candidates, hedged +
/// failover sweeps under the shared retry policy and request budget.
fn shard_call(
    shared: &Shared,
    shard: u32,
    request: Request,
    key: u64,
    budget: &Budget,
) -> Result<Response, String> {
    let replicas = &shared.topology.shards[shard as usize];
    let order = rendezvous_order(replicas.len(), key);
    let ordered: Vec<Arc<Replica>> = order.into_iter().map(|i| replicas[i].clone()).collect();
    call_with_failover(shared, &ordered, &request, budget)
}

/// Ranks `ordered` (a rendezvous order) for this attempt: available
/// replicas serving the newest observed epoch first, then other available
/// replicas, then the rest as last resorts — each group keeping its
/// rendezvous order, so the failover sequence is deterministic for a
/// fixed health view.
fn rank_candidates(ordered: &[Arc<Replica>]) -> Vec<Arc<Replica>> {
    let newest = ordered
        .iter()
        .filter(|r| r.health.is_available())
        .map(|r| r.health.epoch())
        .max();
    let rank = |r: &Arc<Replica>| -> u8 {
        if !r.health.is_available() {
            2
        } else if Some(r.health.epoch()) == newest {
            0
        } else {
            1
        }
    };
    let mut ranked = ordered.to_vec();
    ranked.sort_by_key(rank);
    ranked
}

/// The robustness core: hedged primary, then sequential failover over the
/// remaining candidates, the whole sweep repeated under the jittered
/// retry policy until the budget expires.
fn call_with_failover(
    shared: &Shared,
    ordered: &[Arc<Replica>],
    request: &Request,
    budget: &Budget,
) -> Result<Response, String> {
    if ordered.is_empty() {
        return Err("no replicas configured".to_owned());
    }
    let seed = shared.next_seed.fetch_add(1, Ordering::Relaxed);
    shared
        .config
        .retry
        .run(seed, budget, |attempt| {
            if attempt > 1 {
                shared.metrics.incr("router/retries");
            }
            sweep_once(shared, ordered, request, budget)
        })
        .map_err(|outcome| {
            format!(
                "all replicas failed after {} sweep(s): {}",
                outcome.attempts(),
                outcome.into_error()
            )
        })
}

/// One failover sweep: hedged (primary, backup) then the stragglers.
fn sweep_once(
    shared: &Shared,
    ordered: &[Arc<Replica>],
    request: &Request,
    budget: &Budget,
) -> Result<Response, String> {
    // Health can change between sweeps; re-rank each time.
    let candidates = rank_candidates(ordered);
    let timeout = shared.config.attempt_timeout;
    let metrics = shared.metrics.clone();
    let attempt = |replica: Arc<Replica>| {
        let request = request.clone();
        let metrics = metrics.clone();
        move |token: &CancelToken| -> Result<Response, String> {
            if token.is_cancelled() {
                return Err("cancelled".to_owned());
            }
            if !replica.breaker.try_acquire() {
                metrics.incr("router/breaker_rejected");
                return Err(format!("{}: breaker open", replica.addr));
            }
            replica.call(&request, timeout)
        }
    };

    let primary = candidates[0].clone();
    let backup = candidates.get(1).cloned();
    // No backup ⇒ never hedge: the delay only matters when one exists.
    let delay = primary.trigger.delay();
    let mut wait = delay.saturating_add(timeout.saturating_mul(2));
    if let Some(remaining) = budget.remaining() {
        wait = wait.min(remaining);
    }
    let outcome = run_hedged(delay, wait, attempt(primary), backup.map(&attempt));
    match outcome.fired {
        Some(HedgeReason::LatencyTrigger) => shared.metrics.incr("router/hedges"),
        Some(HedgeReason::PrimaryFailure) => shared.metrics.incr("router/failovers"),
        None => {}
    }
    if outcome.winner == Some(HedgeWinner::Hedge) {
        shared.metrics.incr("router/hedge_wins");
    }
    match outcome.result {
        Ok(resp) => Ok(resp),
        Err(err) => {
            let mut last = err.unwrap_or_else(|| "no attempt answered in time".to_owned());
            // Sequential failover over the last resorts.
            for replica in candidates.iter().skip(2) {
                if budget.expired() {
                    return Err(format!("budget expired; last error: {last}"));
                }
                if !replica.breaker.try_acquire() {
                    shared.metrics.incr("router/breaker_rejected");
                    last = format!("{}: breaker open", replica.addr);
                    continue;
                }
                match replica.call(request, timeout) {
                    Ok(resp) => {
                        shared.metrics.incr("router/failovers");
                        return Ok(resp);
                    }
                    Err(e) => last = e,
                }
            }
            Err(last)
        }
    }
}
