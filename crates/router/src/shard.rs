//! Shard topology: consistent hashing over the item universe, rendezvous
//! hashing over replicas.
//!
//! Two placement questions, two classic answers:
//!
//! - *Which shard owns item `i`?* — a consistent-hash ring with
//!   [`VNODES`] virtual points per shard. Item ids hash onto the ring and
//!   walk clockwise to the first point; adding or removing a shard moves
//!   only `~1/shards` of the universe, and the mapping is a pure function
//!   of `(shard_count, item)` — every router instance agrees without
//!   coordination.
//! - *Which replica of a shard should answer this request?* — rendezvous
//!   (highest-random-weight) hashing of `(replica, request_key)`. Every
//!   router derives the same total order per key without shared state, the
//!   load spreads across replicas key-by-key, and when the preferred
//!   replica is down the next one in the order takes over — the failover
//!   order is equally deterministic.

/// Virtual ring points per shard. 64 keeps the ring small while bounding
/// imbalance to a few percent at the shard counts a router fronts.
const VNODES: u64 = 64;

/// Mixes a 64-bit value (splitmix64 finalizer) — the shared hash for ring
/// points, item placement, and rendezvous weights.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The consistent-hash ring mapping item ids to shards.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: u32,
    /// `(ring_position, shard)` sorted by position.
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// A ring over `shards` shards (clamped ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1) as u32;
        let mut ring: Vec<(u64, u32)> = (0..shards)
            .flat_map(|s| (0..VNODES).map(move |v| (mix((u64::from(s) << 32) | (v + 1)), s)))
            .collect();
        ring.sort_unstable();
        ring.dedup_by_key(|&mut (pos, _)| pos);
        Self { shards, ring }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning item `item` (first ring point clockwise).
    pub fn shard_of(&self, item: u32) -> u32 {
        let h = mix(u64::from(item) ^ 0xD6E8_FEB8_6659_FD93);
        let idx = self.ring.partition_point(|&(pos, _)| pos < h);
        self.ring[idx % self.ring.len()].1
    }

    /// Partitions `items` by owning shard, preserving each item's relative
    /// order. Returns `(shard, items)` pairs in ascending shard order,
    /// empty shards omitted — the deterministic fan-out plan.
    pub fn partition(&self, items: &[u32]) -> Vec<(u32, Vec<u32>)> {
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.shards as usize];
        for &item in items {
            buckets[self.shard_of(item) as usize].push(item);
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, items)| !items.is_empty())
            .map(|(shard, items)| (shard as u32, items))
            .collect()
    }
}

/// The rendezvous order of `replicas` replica slots for `key`: indices
/// sorted by descending hash weight (ties by index, which cannot collide).
/// Index 0 of the result is the key's preferred replica; the rest is the
/// deterministic failover order.
pub fn rendezvous_order(replicas: usize, key: u64) -> Vec<usize> {
    let mut weighted: Vec<(u64, usize)> = (0..replicas)
        .map(|r| (mix(key ^ mix(r as u64 ^ 0xA24B_AED4_963E_E407)), r))
        .collect();
    weighted.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    weighted.into_iter().map(|(_, r)| r).collect()
}

/// A stable request key for rendezvous choice: order-sensitive FNV-1a over
/// the queried item ids (so identical requests pick identical replicas,
/// and distinct requests spread).
pub fn request_key(items: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &item in items {
        h ^= u64::from(item);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let map = ShardMap::new(3);
        assert_eq!(map.shards(), 3);
        for item in 0..1000u32 {
            let s = map.shard_of(item);
            assert!(s < 3);
            assert_eq!(s, ShardMap::new(3).shard_of(item), "pure function");
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let map = ShardMap::new(4);
        let mut counts = [0u32; 4];
        for item in 0..40_000u32 {
            counts[map.shard_of(item) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (4_000..16_000).contains(&c),
                "shard grossly imbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn consistent_hashing_moves_few_items_on_resize() {
        let before = ShardMap::new(4);
        let after = ShardMap::new(5);
        let total = 20_000u32;
        let moved = (0..total)
            .filter(|&i| before.shard_of(i) != after.shard_of(i))
            .count();
        // Ideal is 1/5 = 20%; allow generous slack for vnode variance, but
        // far below the ~80% a modulo mapping would reshuffle.
        assert!(
            moved < (total as usize) * 2 / 5,
            "resize moved {moved}/{total} items"
        );
    }

    #[test]
    fn partition_preserves_order_and_covers_all_items() {
        let map = ShardMap::new(3);
        let items = [9u32, 1, 500, 7, 1, 320];
        let parts = map.partition(&items);
        let mut seen: Vec<u32> = Vec::new();
        let mut last_shard = None;
        for (shard, sub) in &parts {
            assert!(!sub.is_empty());
            assert!(last_shard < Some(*shard), "ascending shard order");
            last_shard = Some(*shard);
            for &item in sub {
                assert_eq!(map.shard_of(item), *shard);
            }
            seen.extend(sub);
        }
        let mut expected = items.to_vec();
        let mut seen_sorted = seen.clone();
        expected.sort_unstable();
        seen_sorted.sort_unstable();
        assert_eq!(seen_sorted, expected, "every item lands exactly once");
        assert!(map.partition(&[]).is_empty());
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        assert!((0..500).all(|i| map.shard_of(i) == 0));
        let map0 = ShardMap::new(0);
        assert_eq!(map0.shards(), 1, "clamped");
    }

    #[test]
    fn rendezvous_is_a_permutation_and_spreads_keys() {
        let order = rendezvous_order(4, 42);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(order, rendezvous_order(4, 42), "pure function");
        // Different keys prefer different replicas (statistically certain).
        let firsts: std::collections::BTreeSet<usize> =
            (0..64u64).map(|k| rendezvous_order(4, k)[0]).collect();
        assert!(firsts.len() > 1, "keys spread over replicas");
        assert!(rendezvous_order(0, 7).is_empty());
    }

    #[test]
    fn rendezvous_failover_order_is_stable_under_removal() {
        // Removing the preferred replica must not reshuffle the rest: the
        // order with replica r removed is the original minus r.
        for key in 0..32u64 {
            let full = rendezvous_order(3, key);
            let reduced: Vec<usize> = full.iter().copied().filter(|&r| r != full[0]).collect();
            assert_eq!(reduced.len(), 2);
            // The relative order of survivors in `full` IS the failover
            // order — this is what makes degraded routing deterministic.
            let mut walk = full.iter().filter(|&&r| r != full[0]);
            assert_eq!(*walk.next().unwrap(), reduced[0]);
            assert_eq!(*walk.next().unwrap(), reduced[1]);
        }
    }

    #[test]
    fn request_key_is_order_sensitive() {
        assert_eq!(request_key(&[1, 2, 3]), request_key(&[1, 2, 3]));
        assert_ne!(request_key(&[1, 2, 3]), request_key(&[3, 2, 1]));
        assert_ne!(request_key(&[]), request_key(&[0]));
    }
}
