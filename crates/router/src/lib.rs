//! `oct-router` — fault-tolerant sharded serving for category-tree
//! queries.
//!
//! A std-only TCP front-end that speaks the same line protocol as
//! `oct-serve` and scatter-gathers queries across a sharded, replicated
//! backend fleet:
//!
//! - **Placement** ([`shard`]): a consistent-hash ring maps item ids to
//!   shards; rendezvous hashing picks each request's replica (and its
//!   deterministic failover order).
//! - **Robustness** ([`replica`], [`router`]): per-replica circuit
//!   breakers and Up→Suspect→Down→Probing health machines, hedged second
//!   requests after a latency-quantile-tracked delay, sequential
//!   failover, and jittered retry sweeps — all bounded by one per-request
//!   [`oct_resilience::Budget`].
//! - **Degradation** ([`merge`]): when a whole shard is unreachable, the
//!   surviving shards' answers merge deterministically into a cover
//!   carrying the typed `partial=1 missing=<ids>` marker instead of an
//!   error; for a fixed set of live shards the merged line is
//!   byte-identical across runs.
//!
//! The router is itself an `oct-serve`-shaped citizen: bounded admission
//! queue with typed `OVERLOADED` shedding, graceful drain, metrics
//! report on exit. See DESIGN.md §17 for the architecture discussion.

#![warn(missing_docs)]

pub mod merge;
pub mod replica;
pub mod router;
pub mod shard;

pub use merge::{merge_covers, SubCover};
pub use replica::Replica;
pub use router::{DrainHandle, Router, RouterConfig};
pub use shard::{rendezvous_order, request_key, ShardMap};
