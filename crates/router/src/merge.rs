//! Deterministic merge of per-shard cover answers.
//!
//! Each shard answers the best cover *for its slice of the queried items*;
//! the router keeps whichever sub-answer wins under the same tie-break
//! order the batch scorer (`oct-core::score`) and the point index use:
//! highest similarity, then highest precision (both inside the shared
//! `EPS` tie band), then the lowest category id. Depth — the scorer's
//! third key — is not on the wire, so the merge goes straight to the id;
//! this is documented in DESIGN.md §17 and is itself deterministic.
//!
//! Determinism contract: for a fixed set of answering shards, the merged
//! response is a pure function of the sub-responses, which are themselves
//! deterministic per shard. Sub-answers are merged in ascending shard
//! order, so repeated runs against the same live fleet produce
//! byte-identical lines.

use oct_core::similarity::EPS;
use oct_core::CatId;
use oct_serve::Response;

/// One shard's contribution to a fan-out cover.
#[derive(Debug, Clone, PartialEq)]
pub struct SubCover {
    /// Which shard answered.
    pub shard: u32,
    /// The tree epoch it answered under.
    pub epoch: u64,
    /// Winning category for the shard's item slice, if any.
    pub cat: Option<CatId>,
    /// Its similarity.
    pub similarity: f64,
    /// Its precision.
    pub precision: f64,
    /// Whether the slice passed the variant's cover threshold.
    pub covered: bool,
    /// Whether the shard served a degraded (budget-expired) answer.
    pub degraded: bool,
    /// The winning category's label, when the request asked for one.
    pub label: Option<String>,
}

impl SubCover {
    /// Extracts a sub-cover from a shard's `COVER` response line.
    pub fn from_response(shard: u32, response: &Response) -> Option<Self> {
        match response {
            Response::Cover {
                epoch,
                cat,
                similarity,
                precision,
                covered,
                degraded,
                label,
                ..
            } => Some(Self {
                shard,
                epoch: *epoch,
                cat: *cat,
                similarity: *similarity,
                precision: *precision,
                covered: *covered,
                degraded: *degraded,
                label: label.clone(),
            }),
            _ => None,
        }
    }
}

/// The scorer's tie-break, minus depth (not on the wire): is `(sim, prec,
/// cat)` strictly better than the incumbent?
fn better(
    sim: f64,
    precision: f64,
    cat: CatId,
    best_sim: f64,
    best_precision: f64,
    best_cat: Option<CatId>,
) -> bool {
    if sim <= 0.0 {
        return false;
    }
    let Some(incumbent) = best_cat else {
        return true;
    };
    if sim > best_sim + EPS {
        return true;
    }
    if (sim - best_sim).abs() > EPS {
        return false;
    }
    if precision > best_precision + EPS {
        return true;
    }
    if (precision - best_precision).abs() > EPS {
        return false;
    }
    cat < incumbent
}

/// Merges the surviving shards' answers into one router response.
///
/// `subs` must be in ascending shard order (the fan-out plan's order);
/// `missing` lists shards that owned queried items but produced no answer
/// and becomes the typed `PARTIAL` marker. The merged epoch is the minimum
/// across contributors (the fleet-consistency floor); `degraded` is the OR
/// of the contributors' flags, and a partial answer is always degraded.
pub fn merge_covers(subs: &[SubCover], mut missing: Vec<u32>) -> Response {
    debug_assert!(subs.windows(2).all(|w| w[0].shard < w[1].shard));
    missing.sort_unstable();
    missing.dedup();
    let mut best: Option<&SubCover> = None;
    let mut any_degraded = false;
    for sub in subs {
        any_degraded |= sub.degraded;
        let Some(cat) = sub.cat else { continue };
        let (bs, bp, bc) = match best {
            Some(b) => (b.similarity, b.precision, b.cat),
            None => (0.0, 0.0, None),
        };
        if better(sub.similarity, sub.precision, cat, bs, bp, bc) {
            best = Some(sub);
        }
    }
    let epoch = subs.iter().map(|s| s.epoch).min().unwrap_or(0);
    let degraded = any_degraded || !missing.is_empty();
    match best {
        Some(win) => Response::Cover {
            epoch,
            cat: win.cat,
            similarity: win.similarity,
            precision: win.precision,
            covered: win.covered,
            degraded,
            missing,
            label: win.label.clone(),
        },
        // No shard found a positive-similarity category: the canonical
        // empty cover (matches a single server's no-cover answer shape).
        None => Response::Cover {
            epoch,
            cat: None,
            similarity: 0.0,
            precision: 1.0,
            covered: false,
            degraded,
            missing,
            label: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(shard: u32, cat: Option<CatId>, sim: f64, precision: f64) -> SubCover {
        SubCover {
            shard,
            epoch: 3,
            cat,
            similarity: sim,
            precision,
            covered: cat.is_some(),
            degraded: false,
            label: cat.map(|c| format!("cat-{c}")),
        }
    }

    #[test]
    fn highest_similarity_wins() {
        let merged = merge_covers(
            &[sub(0, Some(9), 0.5, 0.9), sub(1, Some(2), 0.8, 0.1)],
            vec![],
        );
        match merged {
            Response::Cover {
                cat,
                similarity,
                missing,
                degraded,
                ..
            } => {
                assert_eq!(cat, Some(2));
                assert_eq!(similarity, 0.8);
                assert!(missing.is_empty());
                assert!(!degraded);
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn precision_then_lowest_cat_break_ties() {
        let merged = merge_covers(
            &[sub(0, Some(9), 0.5, 0.7), sub(1, Some(4), 0.5, 0.9)],
            vec![],
        );
        assert!(matches!(merged, Response::Cover { cat: Some(4), .. }));
        let merged = merge_covers(
            &[sub(0, Some(9), 0.5, 0.7), sub(1, Some(4), 0.5, 0.7)],
            vec![],
        );
        assert!(
            matches!(merged, Response::Cover { cat: Some(4), .. }),
            "equal (sim, precision): lowest cat id wins"
        );
    }

    #[test]
    fn eps_banded_similarities_count_as_ties() {
        // Within EPS the similarities tie; precision decides.
        let merged = merge_covers(
            &[sub(0, Some(2), 0.5 + 1e-12, 0.3), sub(1, Some(7), 0.5, 0.9)],
            vec![],
        );
        assert!(matches!(merged, Response::Cover { cat: Some(7), .. }));
    }

    #[test]
    fn merge_is_order_independent_given_sorted_input() {
        // The same sub-answers always merge to the same winner — repeated
        // runs against a fixed live fleet are byte-identical.
        let subs = [
            sub(0, Some(5), 0.6, 0.5),
            sub(1, Some(3), 0.6, 0.5),
            sub(2, None, 0.0, 1.0),
        ];
        let a = merge_covers(&subs, vec![]).encode();
        let b = merge_covers(&subs, vec![]).encode();
        assert_eq!(a, b);
        assert!(a.contains("cat=3"), "lowest id among tied: {a}");
    }

    #[test]
    fn missing_shards_mark_partial_and_degraded() {
        let merged = merge_covers(&[sub(1, Some(2), 0.8, 0.5)], vec![2, 0, 2]);
        match &merged {
            Response::Cover {
                missing,
                degraded,
                cat,
                ..
            } => {
                assert_eq!(missing, &vec![0, 2], "sorted + deduped");
                assert!(*degraded, "partial answers are degraded");
                assert_eq!(*cat, Some(2));
            }
            other => panic!("wrong response {other:?}"),
        }
        assert!(merged.is_partial());
    }

    #[test]
    fn all_shards_empty_yields_canonical_no_cover() {
        let merged = merge_covers(&[sub(0, None, 0.0, 1.0)], vec![]);
        match merged {
            Response::Cover {
                cat,
                similarity,
                precision,
                covered,
                degraded,
                ..
            } => {
                assert_eq!(cat, None);
                assert_eq!(similarity, 0.0);
                assert_eq!(precision, 1.0);
                assert!(!covered);
                assert!(!degraded);
            }
            other => panic!("wrong response {other:?}"),
        }
        // Nothing answered at all (every owning shard missing).
        let empty = merge_covers(&[], vec![0, 1]);
        assert!(empty.is_partial());
    }

    #[test]
    fn zero_similarity_never_wins() {
        let merged = merge_covers(&[sub(0, Some(1), 0.0, 1.0)], vec![]);
        assert!(
            matches!(merged, Response::Cover { cat: None, .. }),
            "sim=0 categories are not covers"
        );
    }

    #[test]
    fn epoch_is_the_fleet_minimum_and_degraded_propagates() {
        let mut a = sub(0, Some(1), 0.4, 0.4);
        a.epoch = 7;
        let mut b = sub(1, Some(2), 0.9, 0.4);
        b.epoch = 5;
        b.degraded = true;
        match merge_covers(&[a, b], vec![]) {
            Response::Cover {
                epoch,
                degraded,
                cat,
                ..
            } => {
                assert_eq!(epoch, 5);
                assert!(degraded);
                assert_eq!(cat, Some(2));
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn from_response_extracts_only_covers() {
        let cover = Response::Cover {
            epoch: 1,
            cat: Some(3),
            similarity: 0.5,
            precision: 0.5,
            covered: true,
            degraded: false,
            missing: Vec::new(),
            label: Some("x".into()),
        };
        let sub = SubCover::from_response(2, &cover).expect("cover extracts");
        assert_eq!(sub.shard, 2);
        assert_eq!(sub.cat, Some(3));
        assert_eq!(SubCover::from_response(0, &Response::Draining), None);
    }
}
