//! One backend replica as the router sees it: address, pooled
//! connections, circuit breaker, health machine, and latency tracking.
//!
//! All per-replica robustness state lives here so the fan-out path can
//! treat a replica as a single callable object: [`Replica::call`] performs
//! one sub-request attempt and does every piece of bookkeeping — breaker
//! verdicts, health transitions, hedge-trigger latency observations, and
//! per-replica metrics — exactly once per attempt, no matter which caller
//! (scatter-gather, failover sweep, hedge thread, probe loop) made it.

use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use oct_obs::{Metrics, ScopedMetrics};
use oct_resilience::{
    BreakerConfig, CircuitBreaker, HealthConfig, HealthMachine, HedgeConfig, HedgeTrigger,
};
use oct_serve::{Client, Request, Response};

/// Idle pooled connections kept per replica. Two covers the steady state
/// (one request + one hedge in flight); extras are dropped on return.
const POOL_CAP: usize = 2;

/// A replica endpoint plus all its robustness state.
pub struct Replica {
    /// The replica's `host:port` address (also its metrics identity).
    pub addr: String,
    /// Per-replica circuit breaker gating request traffic.
    pub breaker: CircuitBreaker,
    /// Up→Suspect→Down→Probing health record, fed by calls and probes.
    pub health: HealthMachine,
    /// Latency-quantile tracker driving this replica's hedge delay.
    pub trigger: HedgeTrigger,
    pool: Mutex<Vec<Client>>,
    scope: ScopedMetrics,
}

impl Replica {
    /// A fresh replica record (healthy until proven otherwise).
    pub fn new(
        addr: String,
        breaker: BreakerConfig,
        health: HealthConfig,
        hedge: HedgeConfig,
        metrics: &Metrics,
    ) -> Self {
        let scope = metrics.scoped(&format!("router/replica/{addr}"));
        Self {
            breaker: CircuitBreaker::new(breaker),
            health: HealthMachine::new(health),
            trigger: HedgeTrigger::new(hedge),
            pool: Mutex::new(Vec::new()),
            scope,
            addr,
        }
    }

    fn pooled(&self) -> Option<Client> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn park(&self, client: Client) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }

    /// One raw request/response exchange: reuses a pooled connection when
    /// available, dials otherwise; the connection returns to the pool only
    /// on success (a failed connection's state is unknowable — drop it).
    fn exchange(&self, request: &Request, timeout: Duration) -> io::Result<Response> {
        // A parked connection can be long dead by the time it is reused:
        // the replica restarted, or courteously retired the connection
        // after its per-connection request cap. That staleness surfaces
        // as an immediate EOF/reset on first use — a property of the
        // *pool*, not of the replica — so it gets one silent redial on a
        // fresh connection instead of burning a health/breaker failure.
        // Safe to retry blindly: every routed verb is idempotent (reads,
        // or SWAP which publishes the same file either way).
        if let Some(mut client) = self.pooled() {
            match client.request(request) {
                Ok(resp) => {
                    self.park(client);
                    return Ok(resp);
                }
                Err(e) if stale_pool_error(&e) => {
                    self.scope.incr("pool_stale");
                }
                Err(e) => return Err(e),
            }
        }
        let mut client = Client::connect(self.addr.as_str(), timeout)?;
        let resp = client.request(request)?;
        self.park(client);
        Ok(resp)
    }

    /// One fully-bookkept sub-request attempt.
    ///
    /// - Transport failure (connect/reset/timeout): health failure +
    ///   breaker failure.
    /// - Protocol rejection (`OVERLOADED`, `ERR ...`): breaker failure
    ///   (back off this replica) but *not* a health failure — the replica
    ///   answered, it is alive.
    /// - Real answer: health success (with the observed epoch), breaker
    ///   success, and the attempt latency feeds the hedge trigger.
    ///
    /// The caller is responsible for [`CircuitBreaker::try_acquire`] —
    /// acquisition is admission control, and skipped attempts must not
    /// record verdicts.
    pub fn call(&self, request: &Request, timeout: Duration) -> Result<Response, String> {
        let started = Instant::now();
        match self.exchange(request, timeout) {
            Ok(resp) => match classify(&resp) {
                Verdict::Answer(epoch) => {
                    let elapsed = started.elapsed();
                    self.trigger.observe(elapsed);
                    self.scope.observe("latency", elapsed);
                    self.scope.incr("ok");
                    self.health
                        .on_success(epoch.unwrap_or_else(|| self.health.epoch()));
                    self.breaker.record_success();
                    Ok(resp)
                }
                Verdict::Rejected(why) => {
                    self.scope.incr("rejected");
                    self.breaker.record_failure();
                    Err(format!("{}: {why}", self.addr))
                }
            },
            Err(e) => {
                self.scope.incr("fail");
                self.health.on_failure();
                self.breaker.record_failure();
                Err(format!("{}: {e}", self.addr))
            }
        }
    }

    /// One health-probe cycle: respects the machine's probe admission
    /// (one prober per Down replica), asks `STATS`, and records the
    /// observed epoch. A successful probe also heals the breaker so
    /// recovered replicas take traffic immediately.
    pub fn probe(&self, timeout: Duration) {
        if !self.health.try_probe() {
            return;
        }
        match self.exchange(&Request::Stats, timeout) {
            Ok(Response::Stats { epoch, .. }) => {
                self.health.on_success(epoch);
                self.breaker.record_success();
                self.scope.incr("probe_ok");
            }
            Ok(_) | Err(_) => {
                self.health.on_failure();
                self.scope.incr("probe_fail");
            }
        }
        self.scope.gauge(
            "health",
            match self.health.state() {
                oct_resilience::HealthState::Up => 3.0,
                oct_resilience::HealthState::Suspect => 2.0,
                oct_resilience::HealthState::Probing => 1.0,
                oct_resilience::HealthState::Down => 0.0,
            },
        );
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("addr", &self.addr)
            .field("health", &self.health.state())
            .field("breaker", &self.breaker.state())
            .finish()
    }
}

/// `true` for the error shapes a dead parked connection produces on
/// first reuse — the peer closed it while it sat in the pool, which says
/// nothing about the replica's current health.
fn stale_pool_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

enum Verdict {
    /// A real answer (with the tree epoch when the response carries one).
    Answer(Option<u64>),
    Rejected(String),
}

fn classify(resp: &Response) -> Verdict {
    match resp {
        Response::Pong { epoch }
        | Response::Cover { epoch, .. }
        | Response::Stats { epoch, .. }
        | Response::Swapped { epoch, .. }
        | Response::TopK { epoch, .. } => Verdict::Answer(Some(*epoch)),
        Response::Nav { .. } | Response::Draining => Verdict::Answer(None),
        // A bad-request answer is deterministic: every replica would say
        // the same, so failing over (or punishing the breaker) is wrong —
        // pass it through as the answer.
        Response::Error {
            code: oct_serve::ErrorCode::BadRequest,
            ..
        } => Verdict::Answer(None),
        Response::Overloaded { queue_depth } => {
            Verdict::Rejected(format!("overloaded (queue {queue_depth})"))
        }
        Response::Error { code, message } => {
            Verdict::Rejected(format!("{} {message}", code.name()))
        }
    }
}
