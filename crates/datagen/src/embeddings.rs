//! "Semantic" item embeddings for the IC-S baseline.
//!
//! The paper's IC-S embeds product titles with a domain-tuned model. The
//! property the baseline needs is that items sharing attributes land close
//! in embedding space; a deterministic hashed bag-of-tokens embedding has
//! exactly that property without a learned model: every title token hashes
//! to a (dimension, sign) pair, and the item vector is the normalized sum.

use crate::catalog::Catalog;

/// Embedding dimensionality.
pub const DIM: usize = 24;

fn hash_token(token: &str) -> u64 {
    // FNV-1a, stable across runs.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in token.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Embeds every catalog item from its title tokens. Tokens earlier in the
/// title (brand/modifiers) and the type token all contribute; the type
/// token is up-weighted because type is the dominant semantic signal.
pub fn item_embeddings(catalog: &Catalog) -> Vec<Vec<f32>> {
    (0..catalog.len() as u32)
        .map(|item| {
            let tokens = catalog.title_tokens(item);
            let mut v = vec![0.0f32; DIM];
            let last = tokens.len().saturating_sub(1);
            for (i, token) in tokens.iter().enumerate() {
                let h = hash_token(token);
                let dim = (h % DIM as u64) as usize;
                let sign = if h >> 32 & 1 == 1 { 1.0 } else { -1.0 };
                let weight = if i == last { 2.0 } else { 1.0 }; // type token
                v[dim] += sign * weight;
            }
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in &mut v {
                    *x /= norm;
                }
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Domain;

    fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn identical_titles_identical_embeddings() {
        let cat = Catalog::generate(Domain::Fashion, 2000, 3);
        let emb = item_embeddings(&cat);
        for i in 0..cat.len() as u32 {
            for j in (i + 1)..(cat.len() as u32).min(i + 50) {
                if cat.title(i) == cat.title(j) {
                    assert!(sq_dist(&emb[i as usize], &emb[j as usize]) < 1e-10);
                }
            }
        }
    }

    #[test]
    fn same_type_closer_than_cross_type_on_average() {
        let cat = Catalog::generate(Domain::Fashion, 1500, 5);
        let emb = item_embeddings(&cat);
        let mut same = (0.0f64, 0usize);
        let mut cross = (0.0f64, 0usize);
        for i in 0..400u32 {
            for j in (i + 1)..400 {
                let d = sq_dist(&emb[i as usize], &emb[j as usize]) as f64;
                if cat.products[i as usize].values[0] == cat.products[j as usize].values[0] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    cross = (cross.0 + d, cross.1 + 1);
                }
            }
        }
        let (same_avg, cross_avg) = (same.0 / same.1 as f64, cross.0 / cross.1 as f64);
        assert!(
            same_avg < cross_avg,
            "same-type avg {same_avg} should beat cross-type {cross_avg}"
        );
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let cat = Catalog::generate(Domain::Electronics, 100, 9);
        for v in item_embeddings(&cat) {
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }
}
