//! Category-cohesiveness via tf-idf title similarity (paper §5.4).
//!
//! The paper validates that CTCR's categories are as semantically cohesive
//! as the manual tree's by computing "the average pairwise tf-idf
//! similarity within each category, w.r.t. the product titles", reported
//! both uniformly averaged across categories (0.52 vs 0.49) and weighted
//! by category size (both 0.45).

use oct_core::tree::{CategoryTree, ROOT};
use oct_core::util::FxHashMap;

use crate::catalog::Catalog;

/// Cohesiveness scores of a tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cohesiveness {
    /// Average of per-category mean pairwise similarity, uniform over
    /// categories.
    pub uniform: f64,
    /// The same average weighted by category size.
    pub size_weighted: f64,
    /// Number of categories measured (≥ 2 items, excluding the root).
    pub categories: usize,
}

/// Computes tf-idf cosine cohesiveness of `tree`'s categories over the
/// catalog titles. Categories with fewer than 2 items (and the root) are
/// skipped; per category, at most `sample` items are measured (pairwise
/// cost is quadratic).
pub fn cohesiveness(catalog: &Catalog, tree: &CategoryTree, sample: usize) -> Cohesiveness {
    cohesiveness_filtered(catalog, tree, sample, &[])
}

/// [`cohesiveness`] skipping categories whose label is in `skip_labels`
/// (e.g. the `C_misc` holding pen, which is not a categorization decision).
pub fn cohesiveness_filtered(
    catalog: &Catalog,
    tree: &CategoryTree,
    sample: usize,
    skip_labels: &[&str],
) -> Cohesiveness {
    // Document frequency over all catalog titles.
    let mut df: FxHashMap<String, u32> = FxHashMap::default();
    for item in 0..catalog.len() as u32 {
        let mut tokens = catalog.title_tokens(item);
        tokens.sort_unstable();
        tokens.dedup();
        for t in tokens {
            *df.entry(t).or_insert(0) += 1;
        }
    }
    let n_docs = catalog.len() as f64;
    let idf = |token: &str| -> f64 {
        let d = df.get(token).copied().unwrap_or(0) as f64;
        ((n_docs + 1.0) / (d + 1.0)).ln() + 1.0
    };

    // tf-idf vector of an item title (tokens are unique per title here, so
    // tf = 1).
    let vector = |item: u32| -> FxHashMap<String, f64> {
        let mut v: FxHashMap<String, f64> = FxHashMap::default();
        for t in catalog.title_tokens(item) {
            let w = idf(&t);
            *v.entry(t).or_insert(0.0) = w;
        }
        let norm: f64 = v.values().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in v.values_mut() {
                *x /= norm;
            }
        }
        v
    };
    let cosine = |a: &FxHashMap<String, f64>, b: &FxHashMap<String, f64>| -> f64 {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small
            .iter()
            .filter_map(|(t, &x)| large.get(t).map(|&y| x * y))
            .sum()
    };

    let full = tree.materialize();
    let mut uniform_acc = 0.0;
    let mut weighted_acc = 0.0;
    let mut weight_total = 0.0;
    let mut categories = 0usize;
    for cat in tree.live_categories() {
        if cat == ROOT {
            continue;
        }
        if tree.label(cat).is_some_and(|l| skip_labels.contains(&l)) {
            continue;
        }
        let items = &full[cat as usize];
        if items.len() < 2 {
            continue;
        }
        // Deterministic sample: stride through the sorted items.
        let take = items.len().min(sample.max(2));
        let stride = (items.len() / take).max(1);
        let sampled: Vec<u32> = items.iter().step_by(stride).take(take).collect();
        let vectors: Vec<_> = sampled.iter().map(|&i| vector(i)).collect();
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..vectors.len() {
            for j in (i + 1)..vectors.len() {
                sum += cosine(&vectors[i], &vectors[j]);
                pairs += 1;
            }
        }
        if pairs == 0 {
            continue;
        }
        let mean = sum / pairs as f64;
        uniform_acc += mean;
        weighted_acc += mean * items.len() as f64;
        weight_total += items.len() as f64;
        categories += 1;
    }
    Cohesiveness {
        uniform: if categories > 0 {
            uniform_acc / categories as f64
        } else {
            0.0
        },
        size_weighted: if weight_total > 0.0 {
            weighted_acc / weight_total
        } else {
            0.0
        },
        categories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Domain;
    use crate::existing_tree::{existing_tree, ExistingTreeConfig};
    use oct_core::tree::CategoryTree;

    #[test]
    fn attribute_tree_is_more_cohesive_than_random() {
        let cat = Catalog::generate(Domain::Fashion, 2000, 17);
        let et = existing_tree(&cat, &ExistingTreeConfig::default());
        let organized = cohesiveness(&cat, &et, 30);

        // A random partition of the same items into same-count categories.
        let mut random = CategoryTree::new();
        let k = 40;
        let cats: Vec<_> = (0..k).map(|_| random.add_category(ROOT)).collect();
        for item in 0..cat.len() as u32 {
            random.assign_item(cats[(item as usize * 2654435761) % k], item);
        }
        let shuffled = cohesiveness(&cat, &random, 30);
        assert!(
            organized.uniform > shuffled.uniform + 0.05,
            "organized {organized:?} vs random {shuffled:?}"
        );
    }

    #[test]
    fn identical_items_score_one() {
        let cat = Catalog::generate(Domain::Fashion, 50, 3);
        // Category of one item duplicated conceptually: pick two items with
        // equal titles if present; otherwise same item twice is impossible,
        // so simply check the range invariant.
        let et = existing_tree(&cat, &ExistingTreeConfig::default());
        let c = cohesiveness(&cat, &et, 20);
        assert!(c.uniform >= 0.0 && c.uniform <= 1.0 + 1e-9);
        assert!(c.size_weighted >= 0.0 && c.size_weighted <= 1.0 + 1e-9);
    }

    #[test]
    fn empty_tree_scores_zero() {
        let cat = Catalog::generate(Domain::Fashion, 20, 3);
        let tree = CategoryTree::new();
        let c = cohesiveness(&cat, &tree, 10);
        assert_eq!(c.categories, 0);
        assert_eq!(c.uniform, 0.0);
    }
}
