//! Synthetic search-query logs with relevance-scored result sets.
//!
//! Queries are conjunctions of 1–3 attribute predicates ("black brand3
//! shirt"), sampled by attribute popularity and value frequency, with daily
//! frequencies following a Zipf law over the distinct queries. The
//! platform's search engine is simulated by attaching a relevance score in
//! `[0, 1]` to every returned item: true matches score high, and a small
//! fraction of *misclassified* foreign items (the paper's "Nike Blazer"
//! example) sneak in above the relevance threshold.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::Catalog;

/// One raw query with its scored result set.
#[derive(Debug, Clone)]
pub struct RawQuery {
    /// Conjunctive predicates `(attribute, value)`.
    pub predicates: Vec<(usize, u16)>,
    /// Query text (predicate values in schema order).
    pub text: String,
    /// Average submissions per day over the window.
    pub daily_frequency: f64,
    /// Scored results: `(item, relevance)`, descending by relevance.
    pub results: Vec<(u32, f32)>,
}

/// A generated query log.
#[derive(Debug, Clone)]
pub struct QueryLog {
    /// The distinct queries.
    pub queries: Vec<RawQuery>,
}

/// Knobs for query-log generation.
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Number of distinct queries to generate.
    pub num_queries: usize,
    /// Zipf skew of query frequencies.
    pub frequency_zipf: f64,
    /// Scale of the heaviest query's daily frequency.
    pub max_daily_frequency: f64,
    /// Probability that a matching item is scored low (search miss).
    pub miss_rate: f64,
    /// Expected fraction of foreign (misclassified) items per result set.
    pub noise_rate: f64,
    /// Drop queries with fewer matches than this.
    pub min_result_size: usize,
    /// Probability that a new query is a *variation* of an earlier one:
    /// the same intent phrased differently, returning a slightly perturbed
    /// result set. Real logs are highly redundant — this is what makes the
    /// paper's query merging worthwhile and train/test splits meaningful.
    pub variation_rate: f64,
    /// Truncate result sets to the top-k by relevance (`None` = unbounded);
    /// public datasets ship top-k results only.
    pub top_k: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            num_queries: 500,
            frequency_zipf: 1.05,
            max_daily_frequency: 2000.0,
            miss_rate: 0.05,
            noise_rate: 0.02,
            min_result_size: 3,
            variation_rate: 0.45,
            top_k: None,
            seed: 0x9E_C0,
        }
    }
}

/// Generates a query log over `catalog`.
pub fn generate_queries(catalog: &Catalog, config: &QueryConfig) -> QueryLog {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let postings = catalog.postings();
    let schema = &catalog.schema;

    // Attribute-selection weights.
    let attr_weights: Vec<f64> = schema
        .attributes
        .iter()
        .map(|a| a.query_popularity)
        .collect();
    let attr_total: f64 = attr_weights.iter().sum();

    let mut seen = std::collections::HashSet::new();
    let mut seen_texts: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut queries: Vec<RawQuery> = Vec::with_capacity(config.num_queries);
    let mut attempts = 0usize;
    let max_attempts = config.num_queries * 50 + 1000;
    while queries.len() < config.num_queries && attempts < max_attempts {
        attempts += 1;
        // A rephrasing of an earlier query: same intent with a modifier
        // word ("nike shirt sale"), independently re-noised result set.
        if !queries.is_empty() && rng.gen_bool(config.variation_rate) {
            const MODIFIERS: [&str; 6] = ["sale", "cheap", "best", "new", "online", "deals"];
            let base = &queries[rng.gen_range(0..queries.len())];
            let predicates = base.predicates.clone();
            let text = format!(
                "{} {}",
                base.text,
                MODIFIERS[rng.gen_range(0..MODIFIERS.len())]
            );
            if !seen_texts.insert(text.clone()) {
                continue;
            }
            let mut matches: Vec<u32> = catalog.matching_items(&predicates);
            // The engine serves rephrasings slightly differently.
            matches.retain(|_| !rng.gen_bool(0.06));
            if matches.len() >= config.min_result_size {
                let results = score_results(catalog, matches, config, &mut rng);
                queries.push(RawQuery {
                    predicates,
                    text,
                    daily_frequency: 0.0,
                    results,
                });
            }
            continue;
        }
        // 1–3 distinct attributes, popularity-weighted.
        let arity = match rng.gen_range(0..10) {
            0..=4 => 1,
            5..=8 => 2,
            _ => 3,
        };
        let mut attrs: Vec<usize> = Vec::new();
        while attrs.len() < arity {
            let mut x = rng.gen::<f64>() * attr_total;
            let mut pick = 0;
            for (a, &w) in attr_weights.iter().enumerate() {
                if x < w {
                    pick = a;
                    break;
                }
                x -= w;
            }
            if !attrs.contains(&pick) {
                attrs.push(pick);
            }
        }
        attrs.sort_unstable();
        // Pick a value per attribute by sampling a random product — this
        // weights values by how many items carry them (queries target
        // populated categories).
        let anchor = &catalog.products[rng.gen_range(0..catalog.len())];
        let predicates: Vec<(usize, u16)> = attrs.iter().map(|&a| (a, anchor.values[a])).collect();
        if !seen.insert(predicates.clone()) {
            continue;
        }
        // Result set via posting intersection.
        let mut matches: Vec<u32> = postings[predicates[0].0][predicates[0].1 as usize].clone();
        for &(a, v) in &predicates[1..] {
            let post = &postings[a][v as usize];
            matches.retain(|item| post.binary_search(item).is_ok());
        }
        if matches.len() < config.min_result_size {
            continue;
        }
        let text = predicates
            .iter()
            .map(|&(a, v)| schema.attributes[a].values[v as usize].clone())
            .collect::<Vec<_>>()
            .join(" ");
        seen_texts.insert(text.clone());
        queries.push(RawQuery {
            predicates,
            text,
            daily_frequency: 0.0,
            results: score_results(catalog, matches, config, &mut rng),
        });
    }

    // Zipf frequencies over queries, assigned to a random permutation so
    // frequency is independent of generation order.
    let n = queries.len();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for (rank, &q) in order.iter().enumerate() {
        queries[q].daily_frequency =
            config.max_daily_frequency / ((rank + 1) as f64).powf(config.frequency_zipf);
    }
    QueryLog { queries }
}

fn score_results(
    catalog: &Catalog,
    matches: Vec<u32>,
    config: &QueryConfig,
    rng: &mut StdRng,
) -> Vec<(u32, f32)> {
    let mut results: Vec<(u32, f32)> = matches
        .iter()
        .map(|&item| {
            let relevance = if rng.gen_bool(config.miss_rate) {
                rng.gen_range(0.3..0.75) // engine under-scores a true match
            } else {
                rng.gen_range(0.82..1.0)
            };
            (item, relevance as f32)
        })
        .collect();
    // Foreign misclassifications: unrelated items scored as relevant.
    let noise = ((matches.len() as f64 * config.noise_rate).round() as usize).min(50);
    for _ in 0..noise {
        let item = rng.gen_range(0..catalog.len()) as u32;
        if !matches.contains(&item) {
            results.push((item, rng.gen_range(0.82..0.95)));
        }
    }
    results.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    if let Some(k) = config.top_k {
        results.truncate(k);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Domain;

    fn catalog() -> Catalog {
        Catalog::generate(Domain::Fashion, 4000, 42)
    }

    #[test]
    fn generates_requested_count() {
        let log = generate_queries(&catalog(), &QueryConfig::default());
        assert_eq!(log.queries.len(), 500);
    }

    #[test]
    fn queries_are_distinct_and_nonempty() {
        let log = generate_queries(&catalog(), &QueryConfig::default());
        let mut seen = std::collections::HashSet::new();
        for q in &log.queries {
            assert!(seen.insert(q.text.clone()), "duplicate {:?}", q.text);
            assert!(q.results.len() >= 3);
            assert!(!q.text.is_empty());
        }
    }

    #[test]
    fn frequencies_follow_zipf() {
        let log = generate_queries(&catalog(), &QueryConfig::default());
        let mut freqs: Vec<f64> = log.queries.iter().map(|q| q.daily_frequency).collect();
        freqs.sort_by(|a, b| b.total_cmp(a));
        assert!(
            freqs[0] > 10.0 * freqs[freqs.len() / 2],
            "head should dominate"
        );
        assert!(freqs.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn results_sorted_by_relevance() {
        let log = generate_queries(&catalog(), &QueryConfig::default());
        for q in &log.queries {
            assert!(q.results.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn noise_injects_foreign_items() {
        let cat = catalog();
        let config = QueryConfig {
            noise_rate: 0.2,
            seed: 1,
            ..QueryConfig::default()
        };
        let log = generate_queries(&cat, &config);
        let with_noise = log.queries.iter().any(|q| {
            q.results.iter().any(|&(item, rel)| {
                rel >= 0.8
                    && !q
                        .predicates
                        .iter()
                        .all(|&(a, v)| cat.products[item as usize].values[a] == v)
            })
        });
        assert!(with_noise, "expected at least one misclassified item");
    }

    #[test]
    fn top_k_truncates() {
        let config = QueryConfig {
            top_k: Some(10),
            ..QueryConfig::default()
        };
        let log = generate_queries(&catalog(), &config);
        assert!(log.queries.iter().all(|q| q.results.len() <= 10));
    }

    #[test]
    fn deterministic_per_seed() {
        let cat = catalog();
        let a = generate_queries(&cat, &QueryConfig::default());
        let b = generate_queries(&cat, &QueryConfig::default());
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.predicates, y.predicates);
            assert_eq!(x.results, y.results);
        }
    }
}
