//! Time-windowed query logs and recency weighting (§5.1, §5.4).
//!
//! XYZ rebuilds its tree every 90 days using queries "submitted at least X
//! times a day, consecutively" over the window, but the user study notes
//! that "platforms can capitalize on short-lived trends, by applying the
//! algorithms over data skewed towards more recent periods" — the Kobe-
//! memorabilia example. This module models a per-day submission series per
//! query and derives weights under pluggable recency schemes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::queries::QueryLog;

/// A query log with a per-day submission count series per query.
#[derive(Debug, Clone)]
pub struct WindowedLog {
    /// The underlying queries (frequencies are the window averages).
    pub log: QueryLog,
    /// `counts[q][d]` = submissions of query `q` on day `d` (day 0 is the
    /// oldest).
    pub counts: Vec<Vec<f64>>,
}

/// How daily counts aggregate into a query weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecencyScheme {
    /// Plain mean over the window — the paper's default weighting.
    Uniform,
    /// Exponential decay: day `d` (0 = oldest) of a `D`-day window gets
    /// weight `half_life`-halving toward the past.
    ExponentialDecay {
        /// Days after which a count's influence halves (looking backwards
        /// from the most recent day).
        half_life: f64,
    },
    /// Only the most recent `days` count (hard window).
    RecentWindow {
        /// Number of trailing days.
        days: usize,
    },
}

/// Temporal shapes a query's demand can follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendShape {
    /// Steady demand with noise.
    Stable,
    /// Demand emerges late in the window (a breaking trend).
    Spike,
    /// Demand dies off early in the window (a fading fad).
    Fade,
}

/// Expands a query log into a windowed log over `days` days.
///
/// `spike_fraction` of queries (selected deterministically per seed) become
/// late spikes and the same fraction become fades; the rest stay stable.
/// Daily counts are scaled so each query's window *mean* equals its
/// original `daily_frequency`, keeping uniform-weight results unchanged.
pub fn windowed(log: &QueryLog, days: usize, spike_fraction: f64, seed: u64) -> WindowedLog {
    assert!(days >= 1, "window needs at least one day");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = Vec::with_capacity(log.queries.len());
    for q in &log.queries {
        let shape = match rng.gen::<f64>() {
            x if x < spike_fraction => TrendShape::Spike,
            x if x < 2.0 * spike_fraction => TrendShape::Fade,
            _ => TrendShape::Stable,
        };
        let mut series: Vec<f64> = (0..days)
            .map(|d| {
                let base = match shape {
                    TrendShape::Stable => 1.0,
                    TrendShape::Spike => {
                        // Ramp from ~0 over the last third of the window.
                        let start = days as f64 * 2.0 / 3.0;
                        if (d as f64) < start {
                            0.02
                        } else {
                            1.0 + (d as f64 - start) / (days as f64 / 3.0)
                        }
                    }
                    TrendShape::Fade => {
                        let end = days as f64 / 3.0;
                        if (d as f64) < end {
                            1.0
                        } else {
                            0.05
                        }
                    }
                };
                base * rng.gen_range(0.8..1.2)
            })
            .collect();
        // Normalize mean to the original daily frequency.
        let mean: f64 = series.iter().sum::<f64>() / days as f64;
        if mean > 0.0 {
            let scale = q.daily_frequency / mean;
            for v in &mut series {
                *v *= scale;
            }
        }
        counts.push(series);
    }
    WindowedLog {
        log: log.clone(),
        counts,
    }
}

impl WindowedLog {
    /// Number of days in the window.
    pub fn days(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Derives per-query weights under `scheme`.
    pub fn weights(&self, scheme: RecencyScheme) -> Vec<f64> {
        let days = self.days().max(1);
        self.counts
            .iter()
            .map(|series| match scheme {
                RecencyScheme::Uniform => series.iter().sum::<f64>() / days as f64,
                RecencyScheme::ExponentialDecay { half_life } => {
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for (d, &v) in series.iter().enumerate() {
                        let age = (days - 1 - d) as f64;
                        let w = 0.5f64.powf(age / half_life.max(1e-9));
                        num += w * v;
                        den += w;
                    }
                    if den > 0.0 {
                        num / den
                    } else {
                        0.0
                    }
                }
                RecencyScheme::RecentWindow { days: recent } => {
                    let take = recent.clamp(1, days);
                    let tail = &series[days - take..];
                    tail.iter().sum::<f64>() / take as f64
                }
            })
            .collect()
    }

    /// Re-weights the log in place under `scheme` and returns it.
    pub fn reweighted(&self, scheme: RecencyScheme) -> QueryLog {
        let weights = self.weights(scheme);
        let mut log = self.log.clone();
        for (q, w) in log.queries.iter_mut().zip(weights) {
            q.daily_frequency = w;
        }
        log
    }

    /// Indices of queries whose recency-weighted demand exceeds their
    /// uniform demand by `factor` — breaking-trend candidates the
    /// taxonomists should look at (§5.4's Kobe detection).
    pub fn breaking_trends(&self, scheme: RecencyScheme, factor: f64) -> Vec<usize> {
        let uniform = self.weights(RecencyScheme::Uniform);
        let recent = self.weights(scheme);
        uniform
            .iter()
            .zip(&recent)
            .enumerate()
            .filter(|(_, (&u, &r))| u > 0.0 && r / u >= factor)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Domain};
    use crate::queries::{generate_queries, QueryConfig};

    fn sample() -> WindowedLog {
        let catalog = Catalog::generate(Domain::Electronics, 2000, 9);
        let log = generate_queries(
            &catalog,
            &QueryConfig {
                num_queries: 80,
                ..QueryConfig::default()
            },
        );
        windowed(&log, 90, 0.15, 77)
    }

    #[test]
    fn uniform_weights_match_original_frequencies() {
        let w = sample();
        let uniform = w.weights(RecencyScheme::Uniform);
        for (q, &u) in w.log.queries.iter().zip(&uniform) {
            assert!(
                (u - q.daily_frequency).abs() < 1e-6 * (1.0 + q.daily_frequency),
                "mean-normalization failed: {u} vs {}",
                q.daily_frequency
            );
        }
    }

    #[test]
    fn decay_boosts_spikes_over_uniform() {
        let w = sample();
        let trends = w.breaking_trends(RecencyScheme::ExponentialDecay { half_life: 10.0 }, 1.5);
        assert!(!trends.is_empty(), "some spikes must be detected");
        // Every flagged query's recent demand genuinely dominates.
        let uniform = w.weights(RecencyScheme::Uniform);
        let recent = w.weights(RecencyScheme::ExponentialDecay { half_life: 10.0 });
        for &t in &trends {
            assert!(recent[t] > uniform[t]);
        }
    }

    #[test]
    fn recent_window_is_a_tail_mean() {
        let w = sample();
        let tail = w.weights(RecencyScheme::RecentWindow { days: 7 });
        for (series, &t) in w.counts.iter().zip(&tail) {
            let manual: f64 = series[series.len() - 7..].iter().sum::<f64>() / 7.0;
            assert!((manual - t).abs() < 1e-9);
        }
    }

    #[test]
    fn reweighted_log_preserves_everything_but_weights() {
        let w = sample();
        let re = w.reweighted(RecencyScheme::RecentWindow { days: 14 });
        assert_eq!(re.queries.len(), w.log.queries.len());
        for (a, b) in re.queries.iter().zip(&w.log.queries) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.results, b.results);
        }
    }

    #[test]
    fn determinism() {
        let catalog = Catalog::generate(Domain::Electronics, 500, 9);
        let log = generate_queries(
            &catalog,
            &QueryConfig {
                num_queries: 20,
                ..QueryConfig::default()
            },
        );
        let a = windowed(&log, 30, 0.2, 5);
        let b = windowed(&log, 30, 0.2, 5);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn rejects_empty_window() {
        let catalog = Catalog::generate(Domain::Electronics, 100, 9);
        let log = generate_queries(
            &catalog,
            &QueryConfig {
                num_queries: 5,
                ..QueryConfig::default()
            },
        );
        let _ = windowed(&log, 0, 0.1, 1);
    }
}
