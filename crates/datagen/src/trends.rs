//! Time-windowed query logs and recency weighting (§5.1, §5.4).
//!
//! XYZ rebuilds its tree every 90 days using queries "submitted at least X
//! times a day, consecutively" over the window, but the user study notes
//! that "platforms can capitalize on short-lived trends, by applying the
//! algorithms over data skewed towards more recent periods" — the Kobe-
//! memorabilia example. This module models a per-day submission series per
//! query and derives weights under pluggable recency schemes.

use oct_core::incremental::{DeltaBatch, SetDelta, SetId};
use oct_core::{InputSet, ItemSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::queries::QueryLog;

/// A query log with a per-day submission count series per query.
#[derive(Debug, Clone)]
pub struct WindowedLog {
    /// The underlying queries (frequencies are the window averages).
    pub log: QueryLog,
    /// `counts[q][d]` = submissions of query `q` on day `d` (day 0 is the
    /// oldest).
    pub counts: Vec<Vec<f64>>,
}

/// How daily counts aggregate into a query weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecencyScheme {
    /// Plain mean over the window — the paper's default weighting.
    Uniform,
    /// Exponential decay: day `d` (0 = oldest) of a `D`-day window gets
    /// weight `half_life`-halving toward the past.
    ExponentialDecay {
        /// Days after which a count's influence halves (looking backwards
        /// from the most recent day). Must be positive and finite.
        half_life: f64,
    },
    /// Only the most recent `days` count (hard window).
    RecentWindow {
        /// Number of trailing days; must be ≥ 1.
        days: usize,
    },
}

/// A recency scheme whose parameters make it meaningless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrendError {
    /// `ExponentialDecay` with a zero, negative, or non-finite half-life.
    InvalidHalfLife(f64),
    /// `RecentWindow { days: 0 }` — an empty window has no mean.
    EmptyRecentWindow,
    /// A delta feed with zero batches.
    NoBatches,
}

impl std::fmt::Display for TrendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrendError::InvalidHalfLife(v) => {
                write!(f, "half_life must be positive and finite, got {v}")
            }
            TrendError::EmptyRecentWindow => {
                write!(f, "RecentWindow needs at least one trailing day")
            }
            TrendError::NoBatches => write!(f, "delta feed needs at least one batch"),
        }
    }
}

impl std::error::Error for TrendError {}

impl RecencyScheme {
    /// Rejects parameterizations with no sensible weighting: a zero,
    /// negative, or non-finite half-life (which the weighting would
    /// otherwise silently clamp) and an empty recent window.
    ///
    /// # Errors
    /// [`TrendError::InvalidHalfLife`] / [`TrendError::EmptyRecentWindow`].
    pub fn validate(self) -> Result<(), TrendError> {
        match self {
            RecencyScheme::Uniform => Ok(()),
            RecencyScheme::ExponentialDecay { half_life } => {
                if half_life.is_finite() && half_life > 0.0 {
                    Ok(())
                } else {
                    Err(TrendError::InvalidHalfLife(half_life))
                }
            }
            RecencyScheme::RecentWindow { days: 0 } => Err(TrendError::EmptyRecentWindow),
            RecencyScheme::RecentWindow { .. } => Ok(()),
        }
    }
}

/// Temporal shapes a query's demand can follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendShape {
    /// Steady demand with noise.
    Stable,
    /// Demand emerges late in the window (a breaking trend).
    Spike,
    /// Demand dies off early in the window (a fading fad).
    Fade,
}

/// Expands a query log into a windowed log over `days` days.
///
/// `spike_fraction` of queries (selected deterministically per seed) become
/// late spikes and the same fraction become fades; the rest stay stable.
/// Daily counts are scaled so each query's window *mean* equals its
/// original `daily_frequency`, keeping uniform-weight results unchanged.
pub fn windowed(log: &QueryLog, days: usize, spike_fraction: f64, seed: u64) -> WindowedLog {
    assert!(days >= 1, "window needs at least one day");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = Vec::with_capacity(log.queries.len());
    for q in &log.queries {
        let shape = match rng.gen::<f64>() {
            x if x < spike_fraction => TrendShape::Spike,
            x if x < 2.0 * spike_fraction => TrendShape::Fade,
            _ => TrendShape::Stable,
        };
        let mut series: Vec<f64> = (0..days)
            .map(|d| {
                let base = match shape {
                    TrendShape::Stable => 1.0,
                    TrendShape::Spike => {
                        // Ramp from ~0 over the last third of the window.
                        let start = days as f64 * 2.0 / 3.0;
                        if (d as f64) < start {
                            0.02
                        } else {
                            1.0 + (d as f64 - start) / (days as f64 / 3.0)
                        }
                    }
                    TrendShape::Fade => {
                        let end = days as f64 / 3.0;
                        if (d as f64) < end {
                            1.0
                        } else {
                            0.05
                        }
                    }
                };
                base * rng.gen_range(0.8..1.2)
            })
            .collect();
        // Normalize mean to the original daily frequency.
        let mean: f64 = series.iter().sum::<f64>() / days as f64;
        if mean > 0.0 {
            let scale = q.daily_frequency / mean;
            for v in &mut series {
                *v *= scale;
            }
        }
        counts.push(series);
    }
    WindowedLog {
        log: log.clone(),
        counts,
    }
}

impl WindowedLog {
    /// Number of days in the window.
    pub fn days(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Derives per-query weights under `scheme`.
    ///
    /// # Errors
    /// Rejects invalid scheme parameters (see [`RecencyScheme::validate`])
    /// instead of silently clamping them.
    pub fn weights(&self, scheme: RecencyScheme) -> Result<Vec<f64>, TrendError> {
        scheme.validate()?;
        Ok(self
            .counts
            .iter()
            .map(|series| series_weight(series, scheme))
            .collect())
    }

    /// Re-weights the log in place under `scheme` and returns it.
    ///
    /// # Errors
    /// Propagates [`TrendError`] for invalid scheme parameters.
    pub fn reweighted(&self, scheme: RecencyScheme) -> Result<QueryLog, TrendError> {
        let weights = self.weights(scheme)?;
        let mut log = self.log.clone();
        for (q, w) in log.queries.iter_mut().zip(weights) {
            q.daily_frequency = w;
        }
        Ok(log)
    }

    /// Indices of queries whose recency-weighted demand exceeds their
    /// uniform demand by `factor` — breaking-trend candidates the
    /// taxonomists should look at (§5.4's Kobe detection).
    ///
    /// # Errors
    /// Propagates [`TrendError`] for invalid scheme parameters.
    pub fn breaking_trends(
        &self,
        scheme: RecencyScheme,
        factor: f64,
    ) -> Result<Vec<usize>, TrendError> {
        let uniform = self.weights(RecencyScheme::Uniform)?;
        let recent = self.weights(scheme)?;
        Ok(uniform
            .iter()
            .zip(&recent)
            .enumerate()
            .filter(|(_, (&u, &r))| u > 0.0 && r / u >= factor)
            .map(|(i, _)| i)
            .collect())
    }
}

/// Weight of one (possibly prefix-truncated) daily series under `scheme`
/// (pre-validated). The last element plays "today": decay ages backwards
/// from it and the recent window is its trailing slice — which is what lets
/// [`delta_batches`] reuse this on revealed prefixes.
fn series_weight(series: &[f64], scheme: RecencyScheme) -> f64 {
    let days = series.len();
    if days == 0 {
        return 0.0;
    }
    match scheme {
        RecencyScheme::Uniform => series.iter().sum::<f64>() / days as f64,
        RecencyScheme::ExponentialDecay { half_life } => {
            let mut num = 0.0;
            let mut den = 0.0;
            for (d, &v) in series.iter().enumerate() {
                let age = (days - 1 - d) as f64;
                let w = 0.5f64.powf(age / half_life);
                num += w * v;
                den += w;
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        }
        RecencyScheme::RecentWindow { days: recent } => {
            // A window longer than the data saturates to the whole series;
            // recent ≥ 1 is guaranteed by validate().
            let take = recent.min(days);
            let tail = &series[days - take..];
            tail.iter().sum::<f64>() / take as f64
        }
    }
}

/// Knobs of [`delta_batches`] — how a windowed log becomes a delta stream.
#[derive(Debug, Clone)]
pub struct DeltaFeedConfig {
    /// Number of batches to cut the window into; batch `b` (1-based)
    /// reveals the first `⌈days·b/batches⌉` days. Must be ≥ 1.
    pub batches: usize,
    /// Recency weighting applied to each revealed prefix.
    pub scheme: RecencyScheme,
    /// A query is *live* while its recency weight stays at or above this
    /// floor (the paper's "submitted at least X times a day" rule applied
    /// continuously): crossing upward emits an upsert, crossing downward a
    /// retire.
    pub min_weight: f64,
    /// Drop items scored below this relevance (see
    /// [`crate::preprocess::relevance_threshold`]).
    pub relevance: f32,
    /// Queries with fewer surviving items never become sets.
    pub min_items: usize,
    /// Suppress upserts whose weight moved by less than this relative
    /// fraction — the engine's view then lags reality by at most this much,
    /// and batches stay sparse.
    pub weight_tolerance: f64,
}

impl Default for DeltaFeedConfig {
    fn default() -> Self {
        Self {
            batches: 10,
            scheme: RecencyScheme::RecentWindow { days: 14 },
            min_weight: 1.0,
            relevance: 0.8,
            min_items: 2,
            weight_tolerance: 0.05,
        }
    }
}

/// Cuts a windowed log into a stream of [`DeltaBatch`]es for the
/// incremental engine: batch `b` reveals a growing prefix of the window,
/// re-weights every query over the prefix under the recency scheme, and
/// emits upserts for queries whose live-status or weight materially changed
/// plus retires for queries that faded below the floor. The stable
/// [`SetId`] of a query is its index in the log.
///
/// Pure in its inputs: the same log and config always produce the same
/// stream (this is what makes `--resume` after a crash sound).
///
/// # Errors
/// [`TrendError::NoBatches`] on `batches == 0`; scheme validation errors as
/// in [`WindowedLog::weights`].
pub fn delta_batches(
    w: &WindowedLog,
    config: &DeltaFeedConfig,
) -> Result<Vec<DeltaBatch>, TrendError> {
    if config.batches == 0 {
        return Err(TrendError::NoBatches);
    }
    config.scheme.validate()?;
    let days = w.days();
    // Result items are fixed per query; only demand varies over the window.
    let items: Vec<Vec<u32>> = w
        .log
        .queries
        .iter()
        .map(|q| {
            q.results
                .iter()
                .filter(|&&(_, rel)| rel >= config.relevance)
                .map(|&(item, _)| item)
                .collect()
        })
        .collect();

    let mut emitted: Vec<Option<f64>> = vec![None; w.counts.len()];
    let mut stream = Vec::with_capacity(config.batches);
    for b in 1..=config.batches {
        let revealed = (days * b).div_ceil(config.batches).max(1);
        let mut deltas = Vec::new();
        for (q, series) in w.counts.iter().enumerate() {
            let prefix = &series[..revealed.min(series.len())];
            let weight = series_weight(prefix, config.scheme);
            let live = weight >= config.min_weight && items[q].len() >= config.min_items;
            let id = q as SetId;
            match (emitted[q], live) {
                (None, true) => {
                    deltas.push(SetDelta::upsert(id, query_set(w, q, &items[q], weight)));
                    emitted[q] = Some(weight);
                }
                (Some(prev), true) => {
                    if (weight - prev).abs() > config.weight_tolerance * prev {
                        deltas.push(SetDelta::upsert(id, query_set(w, q, &items[q], weight)));
                        emitted[q] = Some(weight);
                    }
                }
                (Some(_), false) => {
                    deltas.push(SetDelta::retire(id));
                    emitted[q] = None;
                }
                (None, false) => {}
            }
        }
        stream.push(DeltaBatch::new(deltas));
    }
    Ok(stream)
}

fn query_set(w: &WindowedLog, q: usize, items: &[u32], weight: f64) -> InputSet {
    InputSet::new(ItemSet::new(items.to_vec()), weight).with_label(w.log.queries[q].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Domain};
    use crate::queries::{generate_queries, QueryConfig};

    fn sample() -> WindowedLog {
        let catalog = Catalog::generate(Domain::Electronics, 2000, 9);
        let log = generate_queries(
            &catalog,
            &QueryConfig {
                num_queries: 80,
                ..QueryConfig::default()
            },
        );
        windowed(&log, 90, 0.15, 77)
    }

    #[test]
    fn uniform_weights_match_original_frequencies() {
        let w = sample();
        let uniform = w.weights(RecencyScheme::Uniform).expect("valid scheme");
        for (q, &u) in w.log.queries.iter().zip(&uniform) {
            assert!(
                (u - q.daily_frequency).abs() < 1e-6 * (1.0 + q.daily_frequency),
                "mean-normalization failed: {u} vs {}",
                q.daily_frequency
            );
        }
    }

    #[test]
    fn decay_boosts_spikes_over_uniform() {
        let w = sample();
        let trends = w
            .breaking_trends(RecencyScheme::ExponentialDecay { half_life: 10.0 }, 1.5)
            .expect("valid scheme");
        assert!(!trends.is_empty(), "some spikes must be detected");
        // Every flagged query's recent demand genuinely dominates.
        let uniform = w.weights(RecencyScheme::Uniform).expect("valid scheme");
        let recent = w
            .weights(RecencyScheme::ExponentialDecay { half_life: 10.0 })
            .expect("valid scheme");
        for &t in &trends {
            assert!(recent[t] > uniform[t]);
        }
    }

    #[test]
    fn recent_window_is_a_tail_mean() {
        let w = sample();
        let tail = w
            .weights(RecencyScheme::RecentWindow { days: 7 })
            .expect("valid scheme");
        for (series, &t) in w.counts.iter().zip(&tail) {
            let manual: f64 = series[series.len() - 7..].iter().sum::<f64>() / 7.0;
            assert!((manual - t).abs() < 1e-9);
        }
    }

    #[test]
    fn reweighted_log_preserves_everything_but_weights() {
        let w = sample();
        let re = w
            .reweighted(RecencyScheme::RecentWindow { days: 14 })
            .expect("valid scheme");
        assert_eq!(re.queries.len(), w.log.queries.len());
        for (a, b) in re.queries.iter().zip(&w.log.queries) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.results, b.results);
        }
    }

    #[test]
    fn rejects_degenerate_half_lives() {
        // Regression: these used to be silently clamped to 1e-9 (zero and
        // negatives) or propagate NaN weights — now a typed error.
        let w = sample();
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let scheme = RecencyScheme::ExponentialDecay { half_life: bad };
            // NaN != NaN, so match on the variant rather than assert_eq.
            assert!(
                matches!(w.weights(scheme), Err(TrendError::InvalidHalfLife(_))),
                "half_life {bad} must be rejected"
            );
            assert!(matches!(
                w.reweighted(scheme),
                Err(TrendError::InvalidHalfLife(_))
            ));
            assert!(matches!(
                w.breaking_trends(scheme, 1.5),
                Err(TrendError::InvalidHalfLife(_))
            ));
        }
    }

    #[test]
    fn rejects_empty_recent_window() {
        // Regression: `RecentWindow { days: 0 }` was silently bumped to 1.
        let w = sample();
        let scheme = RecencyScheme::RecentWindow { days: 0 };
        assert_eq!(w.weights(scheme), Err(TrendError::EmptyRecentWindow));
        assert!(matches!(
            w.reweighted(scheme),
            Err(TrendError::EmptyRecentWindow)
        ));
        assert!(matches!(
            w.breaking_trends(scheme, 2.0),
            Err(TrendError::EmptyRecentWindow)
        ));
        // A window longer than the data is a documented saturation, not an
        // error.
        let whole = w
            .weights(RecencyScheme::RecentWindow { days: 10_000 })
            .expect("saturating window is valid");
        let uniform = w.weights(RecencyScheme::Uniform).expect("valid");
        for (a, b) in whole.iter().zip(&uniform) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    use crate::queries::RawQuery;

    fn raw(text: &str, items: &[u32]) -> RawQuery {
        RawQuery {
            predicates: vec![],
            text: text.into(),
            daily_frequency: 0.0, // unused: counts drive the feed
            results: items.iter().map(|&i| (i, 1.0)).collect(),
        }
    }

    /// A hand-built 10-day window: a stable query, a spike that only starts
    /// on day 7, and a fade that dies after day 2.
    fn shaped() -> WindowedLog {
        let log = QueryLog {
            queries: vec![
                raw("stable", &[0, 1, 2]),
                raw("spike", &[3, 4, 5]),
                raw("fade", &[6, 7, 8]),
            ],
        };
        let mut counts = vec![vec![10.0; 10], vec![0.0; 10], vec![0.0; 10]];
        counts[1][7..10].fill(60.0);
        counts[2][..3].fill(60.0);
        WindowedLog { log, counts }
    }

    #[test]
    fn delta_feed_tracks_births_and_deaths() {
        let stream = delta_batches(
            &shaped(),
            &DeltaFeedConfig {
                batches: 5,
                scheme: RecencyScheme::RecentWindow { days: 2 },
                min_weight: 1.0,
                relevance: 0.0,
                min_items: 2,
                weight_tolerance: 0.1,
            },
        )
        .expect("valid feed");
        assert_eq!(stream.len(), 5);

        // Batch 1 (days 0-1): stable and fade are live, the spike is not.
        let first: Vec<SetId> = stream[0].deltas.iter().map(SetDelta::id).collect();
        assert_eq!(first, vec![0, 2]);
        assert!(stream[0]
            .deltas
            .iter()
            .all(|d| matches!(d, SetDelta::Upsert { .. })));

        // The fade retires once its tail window empties (days 0-5 revealed).
        assert!(
            stream[2]
                .deltas
                .iter()
                .any(|d| matches!(d, SetDelta::Retire { id: 2 })),
            "fade must retire in batch 3: {:?}",
            stream[2].deltas
        );
        // The spike is born when day 7 enters the window (days 0-7 revealed).
        assert!(
            stream[3]
                .deltas
                .iter()
                .any(|d| matches!(d, SetDelta::Upsert { id: 1, .. })),
            "spike must appear in batch 4: {:?}",
            stream[3].deltas
        );
        // The stable query is upserted exactly once over the whole stream.
        let stable_deltas = stream
            .iter()
            .flat_map(|b| &b.deltas)
            .filter(|d| d.id() == 0)
            .count();
        assert_eq!(stable_deltas, 1, "constant demand must not re-emit");
    }

    #[test]
    fn delta_feed_converges_to_full_window_weights() {
        let w = sample();
        let config = DeltaFeedConfig {
            batches: 6,
            scheme: RecencyScheme::Uniform,
            weight_tolerance: 0.0, // emit every change: exact convergence
            ..DeltaFeedConfig::default()
        };
        let stream = delta_batches(&w, &config).expect("valid feed");
        let mut live: std::collections::HashMap<SetId, f64> = std::collections::HashMap::new();
        for batch in &stream {
            for delta in &batch.deltas {
                match delta {
                    SetDelta::Upsert { id, set } => {
                        live.insert(*id, set.weight);
                    }
                    SetDelta::Retire { id } => {
                        live.remove(id);
                    }
                }
            }
        }
        // After the last batch the revealed prefix is the whole window, so
        // live weights must equal the plain full-window weights.
        let uniform = w.weights(RecencyScheme::Uniform).expect("valid");
        for (q, query) in w.log.queries.iter().enumerate() {
            let items = query
                .results
                .iter()
                .filter(|&&(_, rel)| rel >= config.relevance)
                .count();
            let expect_live = uniform[q] >= config.min_weight && items >= config.min_items;
            assert_eq!(
                live.contains_key(&(q as SetId)),
                expect_live,
                "query {q} live-status"
            );
            if expect_live {
                assert_eq!(live[&(q as SetId)], uniform[q], "query {q} weight");
            }
        }
    }

    #[test]
    fn delta_feed_drives_the_incremental_engine() {
        use oct_core::incremental::{StreamConfig, StreamEngine};
        use oct_core::Similarity;
        let catalog = Catalog::generate(Domain::Electronics, 800, 9);
        let log = generate_queries(
            &catalog,
            &QueryConfig {
                num_queries: 25,
                ..QueryConfig::default()
            },
        );
        let w = windowed(&log, 30, 0.3, 21);
        let stream = delta_batches(
            &w,
            &DeltaFeedConfig {
                batches: 4,
                scheme: RecencyScheme::RecentWindow { days: 10 },
                ..DeltaFeedConfig::default()
            },
        )
        .expect("valid feed");
        let mut engine = StreamEngine::new(StreamConfig {
            threads: 1,
            ..StreamConfig::new(
                catalog.products.len() as u32,
                Similarity::jaccard_threshold(0.6),
            )
        });
        for batch in &stream {
            let outcome = engine.apply_batch(batch).expect("feed batches are valid");
            assert!(outcome.tree.validate(&engine.instance()).is_ok());
        }
        assert!(
            engine.live_sets() > 0,
            "some queries must survive the floor"
        );
    }

    #[test]
    fn delta_feed_rejects_zero_batches() {
        let w = shaped();
        let config = DeltaFeedConfig {
            batches: 0,
            ..DeltaFeedConfig::default()
        };
        assert!(matches!(
            delta_batches(&w, &config),
            Err(TrendError::NoBatches)
        ));
    }

    #[test]
    fn determinism() {
        let catalog = Catalog::generate(Domain::Electronics, 500, 9);
        let log = generate_queries(
            &catalog,
            &QueryConfig {
                num_queries: 20,
                ..QueryConfig::default()
            },
        );
        let a = windowed(&log, 30, 0.2, 5);
        let b = windowed(&log, 30, 0.2, 5);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn rejects_empty_window() {
        let catalog = Catalog::generate(Domain::Electronics, 100, 9);
        let log = generate_queries(
            &catalog,
            &QueryConfig {
                num_queries: 5,
                ..QueryConfig::default()
            },
        );
        let _ = windowed(&log, 0, 0.1, 1);
    }
}
