//! Synthetic product catalogs.
//!
//! Each product carries one value per schema attribute. Value popularity is
//! Zipf-distributed and mildly correlated with the product type (brand
//! portfolios differ per type), matching the skew of real catalogs: a few
//! huge brands/types and a long tail.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Product domains used in the paper's evaluation (datasets A–C are
/// Fashion, D is Electronics, E is Electronics-flavored public data; the
/// additional public datasets are Fashion/Home flavored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Apparel: types × brands × colors × sleeves × materials × genders.
    Fashion,
    /// Consumer electronics: types × brands × storage × screens × features.
    Electronics,
    /// Home improvement / furniture: types × brands × rooms × materials ×
    /// colors × price bands (the HomeDepot-style public data).
    Home,
}

/// One attribute of the schema.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Attribute name (used in titles and query texts).
    pub name: &'static str,
    /// Value vocabulary.
    pub values: Vec<String>,
    /// Zipf skew of the value distribution (higher = more skewed).
    pub zipf_s: f64,
    /// Relative probability that a query constrains this attribute.
    pub query_popularity: f64,
    /// Whether the value appears in product titles.
    pub in_title: bool,
}

/// The attribute schema of a domain.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Attributes in declaration order; index 0 is the product type, which
    /// anchors the existing tree's first level.
    pub attributes: Vec<Attribute>,
}

impl Schema {
    /// The schema for `domain`.
    pub fn for_domain(domain: Domain) -> Self {
        let gen_values = |prefix: &str, n: usize| -> Vec<String> {
            (0..n).map(|i| format!("{prefix}{i}")).collect()
        };
        let attributes = match domain {
            Domain::Fashion => vec![
                Attribute {
                    name: "type",
                    values: [
                        "shirt", "dress", "jeans", "jacket", "skirt", "sweater", "shorts", "coat",
                        "suit", "hoodie", "polo", "blazer",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                    zipf_s: 0.9,
                    query_popularity: 3.0,
                    in_title: true,
                },
                Attribute {
                    name: "brand",
                    values: gen_values("brand", 40),
                    zipf_s: 1.1,
                    query_popularity: 2.5,
                    in_title: true,
                },
                Attribute {
                    name: "color",
                    values: [
                        "black", "white", "red", "blue", "green", "grey", "navy", "beige", "pink",
                        "brown", "yellow", "purple",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                    zipf_s: 0.8,
                    query_popularity: 2.0,
                    in_title: true,
                },
                Attribute {
                    name: "gender",
                    values: gen_values("gender", 3),
                    zipf_s: 0.3,
                    query_popularity: 1.2,
                    in_title: false,
                },
                Attribute {
                    name: "sleeve",
                    values: ["long-sleeve", "short-sleeve", "sleeveless"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    zipf_s: 0.4,
                    query_popularity: 0.8,
                    in_title: true,
                },
                Attribute {
                    name: "material",
                    values: gen_values("material", 8),
                    zipf_s: 0.7,
                    query_popularity: 0.6,
                    in_title: false,
                },
            ],
            Domain::Electronics => vec![
                Attribute {
                    name: "type",
                    values: [
                        "phone",
                        "camera",
                        "laptop",
                        "tv",
                        "tablet",
                        "headphones",
                        "memory-card",
                        "charger",
                        "speaker",
                        "monitor",
                        "router",
                        "drone",
                        "smartwatch",
                        "console",
                        "printer",
                        "keyboard",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                    zipf_s: 0.9,
                    query_popularity: 3.0,
                    in_title: true,
                },
                Attribute {
                    name: "brand",
                    values: gen_values("brand", 50),
                    zipf_s: 1.1,
                    query_popularity: 2.5,
                    in_title: true,
                },
                Attribute {
                    name: "storage",
                    values: gen_values("gb", 8),
                    zipf_s: 0.8,
                    query_popularity: 1.0,
                    in_title: true,
                },
                Attribute {
                    name: "screen",
                    values: gen_values("inch", 10),
                    zipf_s: 0.7,
                    query_popularity: 0.8,
                    in_title: false,
                },
                Attribute {
                    name: "color",
                    values: ["black", "white", "silver", "gold", "blue", "red"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    zipf_s: 0.8,
                    query_popularity: 1.2,
                    in_title: true,
                },
                Attribute {
                    name: "feature",
                    values: gen_values("feature", 12),
                    zipf_s: 0.8,
                    query_popularity: 0.7,
                    in_title: false,
                },
            ],
            Domain::Home => vec![
                Attribute {
                    name: "type",
                    values: [
                        "sofa", "table", "chair", "lamp", "shelf", "bed", "desk", "rug", "faucet",
                        "cabinet", "mirror", "drill", "paint", "tile",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                    zipf_s: 0.9,
                    query_popularity: 3.0,
                    in_title: true,
                },
                Attribute {
                    name: "brand",
                    values: gen_values("brand", 35),
                    zipf_s: 1.1,
                    query_popularity: 1.8,
                    in_title: true,
                },
                Attribute {
                    name: "room",
                    values: [
                        "living-room",
                        "bedroom",
                        "kitchen",
                        "bathroom",
                        "office",
                        "outdoor",
                        "garage",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                    zipf_s: 0.7,
                    query_popularity: 2.2,
                    in_title: false,
                },
                Attribute {
                    name: "material",
                    values: ["wood", "metal", "glass", "plastic", "fabric", "stone"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    zipf_s: 0.8,
                    query_popularity: 1.5,
                    in_title: true,
                },
                Attribute {
                    name: "color",
                    values: ["white", "black", "oak", "grey", "walnut", "beige", "blue"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    zipf_s: 0.8,
                    query_popularity: 1.2,
                    in_title: true,
                },
                Attribute {
                    name: "price-band",
                    values: gen_values("band", 5),
                    zipf_s: 0.5,
                    query_popularity: 0.6,
                    in_title: false,
                },
            ],
        };
        Self { attributes }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// `true` when the schema has no attributes (never for built-ins).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

/// One catalog product: a value index per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Product {
    /// `values[a]` indexes `schema.attributes[a].values`.
    pub values: Vec<u16>,
}

/// A synthetic catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// The domain this catalog models.
    pub domain: Domain,
    /// Its attribute schema.
    pub schema: Schema,
    /// The products; item id = index.
    pub products: Vec<Product>,
}

/// Samples an index in `0..n` from a Zipf(s) distribution using the
/// inverse-CDF over precomputed cumulative weights.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        cdf.push(acc);
    }
    for v in &mut cdf {
        *v /= acc;
    }
    cdf
}

fn sample_cdf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen();
    cdf.partition_point(|&c| c < x).min(cdf.len() - 1)
}

impl Catalog {
    /// Generates a catalog of `num_items` products, deterministic in
    /// `seed`.
    ///
    /// Brand portfolios are correlated with product types: each type uses a
    /// rotated slice of the brand vocabulary, so "type × brand" categories
    /// have realistic sizes.
    pub fn generate(domain: Domain, num_items: usize, seed: u64) -> Self {
        let schema = Schema::for_domain(domain);
        let mut rng = StdRng::seed_from_u64(seed);
        let cdfs: Vec<Vec<f64>> = schema
            .attributes
            .iter()
            .map(|a| zipf_cdf(a.values.len(), a.zipf_s))
            .collect();
        let num_types = schema.attributes[0].values.len();
        let num_brands = schema.attributes[1].values.len();

        let mut products = Vec::with_capacity(num_items);
        for _ in 0..num_items {
            let mut values = Vec::with_capacity(schema.len());
            let ptype = sample_cdf(&cdfs[0], &mut rng);
            values.push(ptype as u16);
            for (a, attr) in schema.attributes.iter().enumerate().skip(1) {
                let mut v = sample_cdf(&cdfs[a], &mut rng);
                if attr.name == "brand" {
                    // Rotate the brand Zipf by the type so portfolios differ.
                    v = (v + ptype * (num_brands / num_types).max(1)) % num_brands;
                }
                values.push(v as u16);
            }
            products.push(Product { values });
        }
        Self {
            domain,
            schema,
            products,
        }
    }

    /// Number of products.
    pub fn len(&self) -> usize {
        self.products.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.products.is_empty()
    }

    /// The title of item `item`: its title-bearing attribute values, in
    /// schema order (e.g. `"brand3 black long-sleeve shirt"`).
    pub fn title(&self, item: u32) -> String {
        let p = &self.products[item as usize];
        let mut words: Vec<&str> = Vec::new();
        // Brand and modifiers first, type last — like real listings.
        for (a, attr) in self.schema.attributes.iter().enumerate().skip(1) {
            if attr.in_title {
                words.push(&attr.values[p.values[a] as usize]);
            }
        }
        words.push(&self.schema.attributes[0].values[p.values[0] as usize]);
        words.join(" ")
    }

    /// Title tokens of item `item` (the words of [`Catalog::title`]).
    pub fn title_tokens(&self, item: u32) -> Vec<String> {
        self.title(item).split(' ').map(str::to_owned).collect()
    }

    /// Postings: for each `(attribute, value)`, the ascending item ids
    /// carrying it. Indexed `postings[attribute][value]`.
    pub fn postings(&self) -> Vec<Vec<Vec<u32>>> {
        let mut postings: Vec<Vec<Vec<u32>>> = self
            .schema
            .attributes
            .iter()
            .map(|a| vec![Vec::new(); a.values.len()])
            .collect();
        for (item, p) in self.products.iter().enumerate() {
            for (a, &v) in p.values.iter().enumerate() {
                postings[a][v as usize].push(item as u32);
            }
        }
        postings
    }

    /// Items matching a conjunction of `(attribute, value)` predicates.
    pub fn matching_items(&self, predicates: &[(usize, u16)]) -> Vec<u32> {
        self.products
            .iter()
            .enumerate()
            .filter(|(_, p)| predicates.iter().all(|&(a, v)| p.values[a] == v))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::generate(Domain::Fashion, 500, 7);
        let b = Catalog::generate(Domain::Fashion, 500, 7);
        assert_eq!(a.products, b.products);
        let c = Catalog::generate(Domain::Fashion, 500, 8);
        assert_ne!(a.products, c.products);
    }

    #[test]
    fn values_are_in_range() {
        let cat = Catalog::generate(Domain::Electronics, 1000, 3);
        for p in &cat.products {
            assert_eq!(p.values.len(), cat.schema.len());
            for (a, &v) in p.values.iter().enumerate() {
                assert!((v as usize) < cat.schema.attributes[a].values.len());
            }
        }
    }

    #[test]
    fn zipf_skews_toward_head() {
        let cat = Catalog::generate(Domain::Fashion, 5000, 9);
        let mut counts = vec![0usize; cat.schema.attributes[0].values.len()];
        for p in &cat.products {
            counts[p.values[0] as usize] += 1;
        }
        // The most popular type should clearly dominate the least popular.
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        assert!(max > 3 * (min + 1), "expected skew, got {counts:?}");
    }

    #[test]
    fn titles_contain_type_and_brand() {
        let cat = Catalog::generate(Domain::Fashion, 10, 5);
        for item in 0..10u32 {
            let title = cat.title(item);
            let p = &cat.products[item as usize];
            let type_name = &cat.schema.attributes[0].values[p.values[0] as usize];
            let brand = &cat.schema.attributes[1].values[p.values[1] as usize];
            assert!(title.contains(type_name.as_str()), "{title}");
            assert!(title.contains(brand.as_str()), "{title}");
        }
    }

    #[test]
    fn postings_match_matching_items() {
        let cat = Catalog::generate(Domain::Electronics, 800, 11);
        let postings = cat.postings();
        for v in 0..4u16 {
            assert_eq!(postings[0][v as usize], cat.matching_items(&[(0, v)]));
        }
        // Conjunction is the intersection of postings.
        let both = cat.matching_items(&[(0, 0), (4, 0)]);
        for item in &both {
            assert!(postings[0][0].contains(item));
            assert!(postings[4][0].contains(item));
        }
    }

    #[test]
    fn brand_portfolios_differ_by_type() {
        let cat = Catalog::generate(Domain::Fashion, 8000, 13);
        // Count the top brand per product type for two popular types.
        let mut top: Vec<Vec<usize>> = vec![vec![0; cat.schema.attributes[1].values.len()]; 2];
        for p in &cat.products {
            if (p.values[0] as usize) < 2 {
                top[p.values[0] as usize][p.values[1] as usize] += 1;
            }
        }
        let argmax = |v: &[usize]| v.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0;
        assert_ne!(
            argmax(&top[0]),
            argmax(&top[1]),
            "different types should favor different brands"
        );
    }
}
