//! The data-preparation pipeline of §5.1.
//!
//! Raw queries become `OCT` input sets through four steps:
//! 1. **cleaning** — drop infrequent queries (below the frequency floor)
//!    and queries whose results scatter over more than 10 branches of the
//!    existing tree;
//! 2. **result-set computation** — drop items below the relevance
//!    threshold (0.8 for Jaccard/F1 variants, 0.9 for Perfect-Recall and
//!    Exact, per the paper's tuning);
//! 3. **weighting** — weight = average daily frequency;
//! 4. **merging** — near-duplicate result sets (similarity in
//!    `[δ + ¾(1−δ), 1]`) merge into one set with the combined weight.

use oct_core::input::{InputSet, Instance};
use oct_core::itemset::ItemSet;
use oct_core::similarity::{Similarity, SimilarityKind};
use oct_core::tree::CategoryTree;

use crate::existing_tree::branch_of_items;
use crate::queries::QueryLog;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessConfig {
    /// Frequency floor (the paper's confidential `X`).
    pub min_daily_frequency: f64,
    /// Maximum existing-tree branches a result set may touch.
    pub max_branches: usize,
    /// Merge near-duplicate result sets.
    pub merge_similar: bool,
    /// Ignore frequencies and weight every query 1 (public datasets).
    pub uniform_weights: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            min_daily_frequency: 1.0,
            max_branches: 10,
            merge_similar: true,
            uniform_weights: false,
        }
    }
}

/// What the pipeline did, for reporting and the §5.4 ablations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Queries in the raw log.
    pub raw_queries: usize,
    /// Dropped by the frequency floor.
    pub dropped_infrequent: usize,
    /// Dropped by branch scatter.
    pub dropped_scattered: usize,
    /// Dropped because the thresholded result set became too small.
    pub dropped_empty: usize,
    /// Merges performed.
    pub merged: usize,
    /// Final input-set count.
    pub final_sets: usize,
}

/// The paper's relevance threshold for a similarity variant: 0.9 for the
/// recall-strict variants, 0.8 otherwise.
pub fn relevance_threshold(kind: SimilarityKind) -> f32 {
    if kind.requires_perfect_recall() {
        0.9
    } else {
        0.8
    }
}

/// Runs the pipeline, producing an [`Instance`] over the catalog universe.
pub fn build_instance(
    num_items: u32,
    log: &QueryLog,
    existing: &CategoryTree,
    similarity: Similarity,
    config: &PreprocessConfig,
) -> (Instance, PreprocessStats) {
    let mut stats = PreprocessStats {
        raw_queries: log.queries.len(),
        ..PreprocessStats::default()
    };
    let branch = branch_of_items(existing, num_items);
    let relevance = relevance_threshold(similarity.kind);

    let mut sets: Vec<InputSet> = Vec::new();
    for q in &log.queries {
        if q.daily_frequency < config.min_daily_frequency {
            stats.dropped_infrequent += 1;
            continue;
        }
        // Relevance cutoff.
        let items: Vec<u32> = q
            .results
            .iter()
            .filter(|&&(_, rel)| rel >= relevance)
            .map(|&(item, _)| item)
            .collect();
        if items.len() < 2 {
            stats.dropped_empty += 1;
            continue;
        }
        // Branch-scatter cleaning.
        let mut branches: Vec<u32> = items.iter().map(|&i| branch[i as usize]).collect();
        branches.sort_unstable();
        branches.dedup();
        if branches.len() > config.max_branches {
            stats.dropped_scattered += 1;
            continue;
        }
        let weight = if config.uniform_weights {
            1.0
        } else {
            q.daily_frequency
        };
        sets.push(InputSet::new(ItemSet::new(items), weight).with_label(q.text.clone()));
    }

    if config.merge_similar {
        sets = merge_similar(sets, similarity, &mut stats);
    }
    stats.final_sets = sets.len();
    (Instance::new(num_items, sets, similarity), stats)
}

/// Merges every pair of sets whose base similarity lies in
/// `[δ + ¾(1−δ), 1]`, combining weights (union of items, heavier label).
/// Runs greedily to a fixpoint via a size-bucketed candidate scan.
fn merge_similar(
    mut sets: Vec<InputSet>,
    similarity: Similarity,
    stats: &mut PreprocessStats,
) -> Vec<InputSet> {
    let delta = similarity.delta;
    let cutoff = delta + 0.75 * (1.0 - delta);
    let base = similarity.kind.base();
    loop {
        // Inverted index over current sets for candidate generation.
        let mut by_item: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, s) in sets.iter().enumerate() {
            for item in s.items.iter() {
                by_item.entry(item).or_default().push(i);
            }
        }
        // Merge the most similar eligible pair; deterministic tie-break by
        // indices (hash-map iteration order must not leak into results).
        let mut pair: Option<(f64, usize, usize)> = None;
        let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for posting in by_item.values() {
            for (x, &i) in posting.iter().enumerate() {
                for &j in &posting[x + 1..] {
                    let key = (i.min(j), i.max(j));
                    if !seen.insert(key) {
                        continue;
                    }
                    let (a, b) = (&sets[key.0].items, &sets[key.1].items);
                    let sim = base.eval(a.len(), b.len(), a.intersection_size(b));
                    if sim < cutoff - 1e-9 {
                        continue;
                    }
                    let better = match pair {
                        None => true,
                        Some((bs, bi, bj)) => {
                            sim > bs + 1e-12 || ((sim - bs).abs() <= 1e-12 && key < (bi, bj))
                        }
                    };
                    if better {
                        pair = Some((sim, key.0, key.1));
                    }
                }
            }
        }
        let Some((_, i, j)) = pair else {
            return sets;
        };
        let merged_items = sets[i].items.union(&sets[j].items);
        let weight = sets[i].weight + sets[j].weight;
        let label = if sets[i].weight >= sets[j].weight {
            sets[i].label.clone()
        } else {
            sets[j].label.clone()
        };
        let mut merged = InputSet::new(merged_items, weight);
        merged.label = label;
        sets.swap_remove(j);
        sets[i] = merged;
        stats.merged += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Domain};
    use crate::existing_tree::{existing_tree, ExistingTreeConfig};
    use crate::queries::{generate_queries, QueryConfig};

    fn setup() -> (Catalog, QueryLog, CategoryTree) {
        let cat = Catalog::generate(Domain::Fashion, 4000, 42);
        let log = generate_queries(&cat, &QueryConfig::default());
        let tree = existing_tree(&cat, &ExistingTreeConfig::default());
        (cat, log, tree)
    }

    #[test]
    fn builds_valid_instance() {
        let (cat, log, tree) = setup();
        let (instance, stats) = build_instance(
            cat.len() as u32,
            &log,
            &tree,
            Similarity::jaccard_threshold(0.8),
            &PreprocessConfig::default(),
        );
        assert!(stats.final_sets > 50, "{stats:?}");
        assert_eq!(instance.num_sets(), stats.final_sets);
        assert!(instance.sets.iter().all(|s| s.items.len() >= 2));
        assert!(instance.sets.iter().all(|s| s.weight > 0.0));
    }

    #[test]
    fn frequency_floor_drops_tail() {
        let (cat, log, tree) = setup();
        let config = PreprocessConfig {
            min_daily_frequency: 50.0,
            ..PreprocessConfig::default()
        };
        let (_, stats) = build_instance(
            cat.len() as u32,
            &log,
            &tree,
            Similarity::jaccard_threshold(0.8),
            &config,
        );
        assert!(stats.dropped_infrequent > 100, "{stats:?}");
    }

    #[test]
    fn perfect_recall_uses_stricter_relevance() {
        assert_eq!(relevance_threshold(SimilarityKind::PerfectRecall), 0.9);
        assert_eq!(relevance_threshold(SimilarityKind::Exact), 0.9);
        assert_eq!(relevance_threshold(SimilarityKind::JaccardThreshold), 0.8);
        let (cat, log, tree) = setup();
        let (pr, _) = build_instance(
            cat.len() as u32,
            &log,
            &tree,
            Similarity::perfect_recall(0.8),
            &PreprocessConfig::default(),
        );
        let (jac, _) = build_instance(
            cat.len() as u32,
            &log,
            &tree,
            Similarity::jaccard_threshold(0.8),
            &PreprocessConfig::default(),
        );
        // Stricter relevance can only shrink result sets.
        let pr_total: usize = pr.sets.iter().map(|s| s.items.len()).sum();
        let jac_total: usize = jac.sets.iter().map(|s| s.items.len()).sum();
        assert!(pr_total <= jac_total);
    }

    #[test]
    fn merging_reduces_sets_and_preserves_weight() {
        let (cat, log, tree) = setup();
        let unmerged_cfg = PreprocessConfig {
            merge_similar: false,
            ..PreprocessConfig::default()
        };
        let sim = Similarity::jaccard_threshold(0.8);
        let (merged, mstats) = build_instance(
            cat.len() as u32,
            &log,
            &tree,
            sim,
            &PreprocessConfig::default(),
        );
        let (unmerged, _) = build_instance(cat.len() as u32, &log, &tree, sim, &unmerged_cfg);
        assert!(merged.num_sets() <= unmerged.num_sets());
        assert!(
            (merged.total_weight() - unmerged.total_weight()).abs() < 1e-6,
            "merging must conserve weight mass"
        );
        assert_eq!(unmerged.num_sets() - merged.num_sets(), mstats.merged);
    }

    #[test]
    fn uniform_weights_for_public_data() {
        let (cat, log, tree) = setup();
        let config = PreprocessConfig {
            uniform_weights: true,
            merge_similar: false,
            ..PreprocessConfig::default()
        };
        let (instance, _) = build_instance(
            cat.len() as u32,
            &log,
            &tree,
            Similarity::perfect_recall(0.6),
            &config,
        );
        assert!(instance.sets.iter().all(|s| (s.weight - 1.0).abs() < 1e-12));
    }

    #[test]
    fn scatter_cleaning_drops_multi_branch_queries() {
        let (cat, log, tree) = setup();
        let strict = PreprocessConfig {
            max_branches: 1,
            ..PreprocessConfig::default()
        };
        let (_, stats) = build_instance(
            cat.len() as u32,
            &log,
            &tree,
            Similarity::jaccard_threshold(0.8),
            &strict,
        );
        assert!(stats.dropped_scattered > 0, "{stats:?}");
    }
}
