//! The existing manually-built tree (baseline **ET**).
//!
//! Real platforms categorize by a fixed attribute hierarchy chosen by
//! taxonomists years ago — here: product type → brand (popular brands get
//! their own category, the tail is pooled) → a secondary attribute. That is
//! exactly the structure whose mismatch with live query demand motivates
//! the paper (e.g. the memory-cards example of Figure 1).

use oct_core::tree::{CategoryTree, ROOT};

use crate::catalog::Catalog;

/// Parameters of the generated existing tree.
#[derive(Debug, Clone, Copy)]
pub struct ExistingTreeConfig {
    /// Brands with at least this many items (within a type) get a dedicated
    /// second-level category; the rest pool into "other".
    pub min_brand_category: usize,
    /// Split brand categories by the secondary attribute when they hold at
    /// least this many items.
    pub min_leaf_split: usize,
    /// Index of the secondary attribute used for third-level splits.
    pub secondary_attribute: usize,
}

impl Default for ExistingTreeConfig {
    fn default() -> Self {
        Self {
            min_brand_category: 30,
            min_leaf_split: 150,
            // Manual trees age: the third level splits on an attribute that
            // taxonomists chose years ago (material / feature), not on what
            // users currently search — the staleness that motivates the
            // paper (Figure 1).
            secondary_attribute: 5,
        }
    }
}

/// Builds the existing tree for `catalog`.
pub fn existing_tree(catalog: &Catalog, config: &ExistingTreeConfig) -> CategoryTree {
    let mut tree = CategoryTree::new();
    let num_types = catalog.schema.attributes[0].values.len();
    let num_brands = catalog.schema.attributes[1].values.len();
    let sec = config.secondary_attribute.min(catalog.schema.len() - 1);
    let num_sec = catalog.schema.attributes[sec].values.len();

    // Bucket items by (type, brand).
    let mut buckets: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); num_brands]; num_types];
    for (item, p) in catalog.products.iter().enumerate() {
        buckets[p.values[0] as usize][p.values[1] as usize].push(item as u32);
    }

    for (t, brands) in buckets.iter().enumerate() {
        if brands.iter().all(Vec::is_empty) {
            continue;
        }
        let type_cat = tree.add_category(ROOT);
        tree.set_label(type_cat, catalog.schema.attributes[0].values[t].clone());
        let mut other: Vec<u32> = Vec::new();
        for (b, items) in brands.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            if items.len() < config.min_brand_category {
                other.extend_from_slice(items);
                continue;
            }
            let brand_cat = tree.add_category(type_cat);
            tree.set_label(
                brand_cat,
                format!(
                    "{} {}",
                    catalog.schema.attributes[1].values[b], catalog.schema.attributes[0].values[t]
                ),
            );
            if items.len() >= config.min_leaf_split {
                // Third level: split by the secondary attribute.
                let mut by_sec: Vec<Vec<u32>> = vec![Vec::new(); num_sec];
                for &item in items {
                    by_sec[catalog.products[item as usize].values[sec] as usize].push(item);
                }
                let mut brand_other = Vec::new();
                for (v, sub) in by_sec.into_iter().enumerate() {
                    if sub.len() >= config.min_brand_category {
                        let leaf = tree.add_category(brand_cat);
                        tree.set_label(
                            leaf,
                            format!(
                                "{} {}",
                                catalog.schema.attributes[sec].values[v],
                                catalog.schema.attributes[0].values[t]
                            ),
                        );
                        tree.assign_items(leaf, sub);
                    } else {
                        brand_other.extend(sub);
                    }
                }
                tree.assign_items(brand_cat, brand_other);
            } else {
                tree.assign_items(brand_cat, items.iter().copied());
            }
        }
        tree.assign_items(type_cat, other);
    }
    tree
}

/// For each item, the id of its top-level (type) branch in `tree`; used by
/// the branch-scatter query cleaning of §5.1.
pub fn branch_of_items(tree: &CategoryTree, num_items: u32) -> Vec<u32> {
    let mut branch = vec![u32::MAX; num_items as usize];
    for cat in tree.live_categories() {
        if cat == ROOT {
            continue;
        }
        // Top-level ancestor.
        let mut top = cat;
        while let Some(p) = tree.parent(top) {
            if p == ROOT {
                break;
            }
            top = p;
        }
        for &item in tree.direct_items(cat) {
            branch[item as usize] = top;
        }
    }
    branch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Domain;
    use oct_core::input::{InputSet, Instance};
    use oct_core::itemset::ItemSet;
    use oct_core::similarity::Similarity;

    fn catalog() -> Catalog {
        Catalog::generate(Domain::Fashion, 3000, 21)
    }

    #[test]
    fn every_item_is_assigned_exactly_once() {
        let cat = catalog();
        let tree = existing_tree(&cat, &ExistingTreeConfig::default());
        // Validation with a trivial instance checks the bound-1 discipline.
        let inst = Instance::new(
            cat.len() as u32,
            vec![InputSet::new(ItemSet::new(vec![0]), 1.0)],
            Similarity::exact(),
        );
        assert!(tree.validate(&inst).is_ok());
        assert_eq!(tree.assigned_items().len(), cat.len());
    }

    #[test]
    fn top_level_matches_types() {
        let cat = catalog();
        let tree = existing_tree(&cat, &ExistingTreeConfig::default());
        let top_labels: Vec<&str> = tree
            .children(ROOT)
            .iter()
            .filter_map(|&c| tree.label(c))
            .collect();
        assert!(top_labels.contains(&"shirt"));
        // No more top-level nodes than types.
        assert!(top_labels.len() <= cat.schema.attributes[0].values.len());
    }

    #[test]
    fn popular_brands_get_categories() {
        let cat = catalog();
        let tree = existing_tree(&cat, &ExistingTreeConfig::default());
        let has_brand_level = tree.live_categories().iter().any(|&c| tree.depth(c) == 2);
        assert!(has_brand_level, "expected type→brand categories");
    }

    #[test]
    fn branch_of_items_is_total_and_toplevel() {
        let cat = catalog();
        let tree = existing_tree(&cat, &ExistingTreeConfig::default());
        let branch = branch_of_items(&tree, cat.len() as u32);
        for (item, &b) in branch.iter().enumerate() {
            assert_ne!(b, u32::MAX, "item {item} has no branch");
            assert_eq!(tree.parent(b), Some(ROOT));
        }
    }
}
