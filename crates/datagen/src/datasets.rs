//! Named dataset specifications mirroring the paper's evaluation data.
//!
//! | name            | paper source                    | domain      | queries | items |
//! |-----------------|---------------------------------|-------------|---------|-------|
//! | A               | XYZ private                     | Fashion     | 450     | 28K   |
//! | B               | XYZ private                     | Fashion     | 1.2K    | 94K   |
//! | C               | XYZ private                     | Fashion     | 3K      | 340K  |
//! | D               | XYZ private                     | Electronics | 20K     | 1.2M  |
//! | E               | BestBuy queries × Amazon items  | Electronics | ~1K     | 50K   |
//! | CrowdFlower     | public search-relevance data    | Fashion     | ~0.8K   | 18K   |
//! | HomeDepot       | public product-search data      | Home        | ~2K     | 55K   |
//! | VictoriasSecret | public innerwear data           | Fashion     | ~0.5K   | 8K    |
//!
//! Query counts are post-merge; the raw logs are larger (D was 100K raw).
//! Dataset E has uniform weights and top-k-truncated result sets, like the
//! public datasets. A `scale` knob shrinks everything proportionally so
//! experiments run on laptops; the paper's trends are scale-stable.

use oct_core::input::Instance;
use oct_core::similarity::Similarity;
use oct_core::tree::CategoryTree;

use crate::catalog::{Catalog, Domain};
use crate::existing_tree::{existing_tree, ExistingTreeConfig};
use crate::preprocess::{build_instance, PreprocessConfig, PreprocessStats};
use crate::queries::{generate_queries, QueryConfig, QueryLog};

/// The named datasets: the paper's A–E plus the three further public
/// datasets it lists (CrowdFlower, HomeDepot, Victoria's Secret), for which
/// it reports "very similar trends".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// Fashion, 450 queries / 28K items.
    A,
    /// Fashion, 1.2K queries / 94K items.
    B,
    /// Fashion, 3K queries / 340K items.
    C,
    /// Electronics, 20K queries / 1.2M items.
    D,
    /// Public-style Electronics (BestBuy × Amazon), uniform weights, top-k.
    E,
    /// Public CrowdFlower search-relevance style: small, mixed retail.
    CrowdFlower,
    /// Public HomeDepot product-search style: Home domain.
    HomeDepot,
    /// Public Victoria's Secret style: Fashion, small catalog.
    VictoriasSecret,
}

impl DatasetName {
    /// All names in order (paper's private A–D, then the public ones).
    pub fn all() -> [DatasetName; 8] {
        [
            DatasetName::A,
            DatasetName::B,
            DatasetName::C,
            DatasetName::D,
            DatasetName::E,
            DatasetName::CrowdFlower,
            DatasetName::HomeDepot,
            DatasetName::VictoriasSecret,
        ]
    }

    /// The public (uniform-weight) datasets.
    pub fn public() -> [DatasetName; 4] {
        [
            DatasetName::E,
            DatasetName::CrowdFlower,
            DatasetName::HomeDepot,
            DatasetName::VictoriasSecret,
        ]
    }

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetName::A => "A",
            DatasetName::B => "B",
            DatasetName::C => "C",
            DatasetName::D => "D",
            DatasetName::E => "E",
            DatasetName::CrowdFlower => "CrowdFlower",
            DatasetName::HomeDepot => "HomeDepot",
            DatasetName::VictoriasSecret => "VictoriasSecret",
        }
    }
}

/// Size/shape parameters of a dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which dataset this mirrors.
    pub name: DatasetName,
    /// Catalog domain.
    pub domain: Domain,
    /// Universe size at scale 1.
    pub items: usize,
    /// Raw (pre-merge) distinct query count at scale 1.
    pub raw_queries: usize,
    /// Uniform weights (public datasets).
    pub uniform_weights: bool,
    /// Top-k truncation of result sets (public datasets).
    pub top_k: Option<usize>,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The spec for a named dataset.
    pub fn of(name: DatasetName) -> Self {
        match name {
            DatasetName::A => Self {
                name,
                domain: Domain::Fashion,
                items: 28_000,
                raw_queries: 900,
                uniform_weights: false,
                top_k: None,
                seed: 0xA,
            },
            DatasetName::B => Self {
                name,
                domain: Domain::Fashion,
                items: 94_000,
                raw_queries: 2_400,
                uniform_weights: false,
                top_k: None,
                seed: 0xB,
            },
            DatasetName::C => Self {
                name,
                domain: Domain::Fashion,
                items: 340_000,
                raw_queries: 6_000,
                uniform_weights: false,
                top_k: None,
                seed: 0xC,
            },
            DatasetName::D => Self {
                name,
                domain: Domain::Electronics,
                items: 1_200_000,
                raw_queries: 40_000,
                uniform_weights: false,
                top_k: None,
                seed: 0xD,
            },
            DatasetName::E => Self {
                name,
                domain: Domain::Electronics,
                items: 50_000,
                raw_queries: 2_000,
                uniform_weights: true,
                top_k: Some(200),
                seed: 0xE,
            },
            DatasetName::CrowdFlower => Self {
                name,
                domain: Domain::Fashion,
                items: 18_000,
                raw_queries: 1_200,
                uniform_weights: true,
                top_k: Some(60),
                seed: 0xCF,
            },
            DatasetName::HomeDepot => Self {
                name,
                domain: Domain::Home,
                items: 55_000,
                raw_queries: 3_000,
                uniform_weights: true,
                top_k: Some(100),
                seed: 0x4D,
            },
            DatasetName::VictoriasSecret => Self {
                name,
                domain: Domain::Fashion,
                items: 8_000,
                raw_queries: 700,
                uniform_weights: true,
                top_k: Some(80),
                seed: 0x75,
            },
        }
    }
}

/// A fully generated dataset: catalog, existing tree, raw log, and the
/// preprocessed `OCT` instance.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The spec this was generated from.
    pub spec: DatasetSpec,
    /// Effective scale used.
    pub scale: f64,
    /// The product catalog.
    pub catalog: Catalog,
    /// The manually-built tree (ET baseline and cleaning reference).
    pub existing: CategoryTree,
    /// The raw query log (pre-preprocessing).
    pub log: QueryLog,
    /// The preprocessed instance.
    pub instance: Instance,
    /// Preprocessing statistics.
    pub stats: PreprocessStats,
}

/// Generates dataset `name` at `scale ∈ (0, 1]` for `similarity`.
///
/// # Panics
/// Panics when `scale` is not in `(0, 1]`.
pub fn generate(name: DatasetName, scale: f64, similarity: Similarity) -> GeneratedDataset {
    let spec = DatasetSpec::of(name);
    generate_spec(&spec, scale, similarity)
}

/// Generates from an explicit spec (used by the scalability sweeps).
pub fn generate_spec(spec: &DatasetSpec, scale: f64, similarity: Similarity) -> GeneratedDataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
    let items = ((spec.items as f64 * scale) as usize).max(300);
    let raw_queries = ((spec.raw_queries as f64 * scale) as usize).max(40);

    let catalog = Catalog::generate(spec.domain, items, spec.seed);
    let existing = existing_tree(&catalog, &ExistingTreeConfig::default());
    let query_config = QueryConfig {
        num_queries: raw_queries,
        top_k: spec.top_k,
        seed: spec.seed.wrapping_mul(0x9E37_79B9),
        // The paper's public datasets contain only distinct queries (hence
        // the uniform weights); redundancy is a private-log phenomenon.
        variation_rate: if spec.uniform_weights {
            0.0
        } else {
            QueryConfig::default().variation_rate
        },
        ..QueryConfig::default()
    };
    let log = generate_queries(&catalog, &query_config);
    let preprocess = PreprocessConfig {
        uniform_weights: spec.uniform_weights,
        ..PreprocessConfig::default()
    };
    let (instance, stats) = build_instance(items as u32, &log, &existing, similarity, &preprocess);
    GeneratedDataset {
        spec: spec.clone(),
        scale,
        catalog,
        existing,
        log,
        instance,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_dataset_a_has_expected_shape() {
        let ds = generate(DatasetName::A, 0.1, Similarity::jaccard_threshold(0.8));
        assert_eq!(ds.catalog.len(), 2800);
        assert!(ds.instance.num_sets() > 20, "{:?}", ds.stats);
        assert!(ds.instance.num_sets() < ds.stats.raw_queries);
        // Weighted (frequency) inputs.
        let weights: Vec<f64> = ds.instance.sets.iter().map(|s| s.weight).collect();
        assert!(weights.iter().any(|&w| w > 2.0));
    }

    #[test]
    fn dataset_e_is_uniform_and_truncated() {
        let ds = generate(DatasetName::E, 0.05, Similarity::perfect_recall(0.6));
        assert!(ds
            .instance
            .sets
            .iter()
            .all(|s| (s.weight - 1.0).abs() < 1e-12));
        assert!(ds.log.queries.iter().all(|q| q.results.len() <= 200));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetName::B, 0.02, Similarity::jaccard_threshold(0.8));
        let b = generate(DatasetName::B, 0.02, Similarity::jaccard_threshold(0.8));
        assert_eq!(a.instance.num_sets(), b.instance.num_sets());
        for (x, y) in a.instance.sets.iter().zip(&b.instance.sets) {
            assert_eq!(x.items, y.items);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn rejects_bad_scale() {
        let _ = generate(DatasetName::A, 0.0, Similarity::exact());
    }

    #[test]
    fn most_items_in_some_set_appear_in_two() {
        // Paper §5.1: relevance thresholds were tuned so that almost every
        // item appears in at least two input sets. Check the spirit: among
        // items appearing at all, a solid majority appear ≥ 2 times.
        let ds = generate(DatasetName::A, 0.1, Similarity::jaccard_threshold(0.8));
        let index = ds.instance.inverted_index();
        let (mut once, mut multi) = (0usize, 0usize);
        for (_, sets) in index.entries() {
            match sets.len() {
                0 => {}
                1 => once += 1,
                _ => multi += 1,
            }
        }
        assert!(
            multi > once,
            "expected most covered items in ≥2 sets: once={once} multi={multi}"
        );
    }
}
