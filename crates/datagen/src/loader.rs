//! Plain-text interchange for query logs.
//!
//! Platforms adopting the library bring their own search logs. This module
//! reads and writes a minimal line-oriented TSV format, one query per line:
//!
//! ```text
//! <query text>\t<daily frequency>\t<item:relevance>[,<item:relevance>…]
//! ```
//!
//! Example:
//!
//! ```text
//! memory cards\t812.5\t17:0.99,102:0.93,54:0.88
//! ```
//!
//! Lines starting with `#` and blank lines are skipped. Relevances may be
//! omitted (`17,102,54`), defaulting to 1.0.

use crate::queries::{QueryLog, RawQuery};

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a TSV query log.
///
/// Queries carry no attribute predicates (those are synthetic-only); the
/// `predicates` field is left empty.
pub fn parse_query_log(text: &str) -> Result<QueryLog, ParseError> {
    let mut queries = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let text = fields
            .next()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| err(line_no, "missing query text"))?
            .to_owned();
        let freq_raw = fields
            .next()
            .ok_or_else(|| err(line_no, "missing frequency field"))?;
        let daily_frequency: f64 = freq_raw
            .parse()
            .map_err(|_| err(line_no, &format!("bad frequency {freq_raw:?}")))?;
        if !daily_frequency.is_finite() || daily_frequency < 0.0 {
            return Err(err(line_no, "frequency must be non-negative and finite"));
        }
        let results_raw = fields
            .next()
            .ok_or_else(|| err(line_no, "missing results field"))?;
        if fields.next().is_some() {
            return Err(err(line_no, "too many tab-separated fields"));
        }
        let mut results = Vec::new();
        for part in results_raw.split(',').filter(|p| !p.is_empty()) {
            let (item_raw, rel_raw) = match part.split_once(':') {
                Some((i, r)) => (i, Some(r)),
                None => (part, None),
            };
            let item: u32 = item_raw
                .trim()
                .parse()
                .map_err(|_| err(line_no, &format!("bad item id {item_raw:?}")))?;
            let relevance: f32 = match rel_raw {
                None => 1.0,
                Some(r) => r
                    .trim()
                    .parse()
                    .map_err(|_| err(line_no, &format!("bad relevance {r:?}")))?,
            };
            if !(0.0..=1.0).contains(&relevance) {
                return Err(err(line_no, "relevance must be in [0, 1]"));
            }
            results.push((item, relevance));
        }
        if results.is_empty() {
            return Err(err(line_no, "query has no results"));
        }
        results.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        queries.push(RawQuery {
            predicates: Vec::new(),
            text,
            daily_frequency,
            results,
        });
    }
    Ok(QueryLog { queries })
}

/// Serializes a query log to the TSV format accepted by
/// [`parse_query_log`].
pub fn write_query_log(log: &QueryLog) -> String {
    let mut out = String::new();
    out.push_str("# query\tdaily_frequency\titem:relevance,...\n");
    for q in &log.queries {
        let results = q
            .results
            .iter()
            .map(|&(item, rel)| format!("{item}:{rel}"))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!("{}\t{}\t{}\n", q.text, q.daily_frequency, results));
    }
    out
}

fn err(line: usize, message: &str) -> ParseError {
    ParseError {
        line,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Domain};
    use crate::queries::{generate_queries, QueryConfig};

    #[test]
    fn parses_basic_log() {
        let log =
            parse_query_log("# comment\nmemory cards\t812.5\t17:0.99,102:0.93\n\nssd\t10\t3,4,5\n")
                .expect("valid log");
        assert_eq!(log.queries.len(), 2);
        assert_eq!(log.queries[0].text, "memory cards");
        assert_eq!(log.queries[0].daily_frequency, 812.5);
        assert_eq!(log.queries[0].results, vec![(17, 0.99), (102, 0.93)]);
        assert_eq!(log.queries[1].results, vec![(3, 1.0), (4, 1.0), (5, 1.0)]);
    }

    #[test]
    fn roundtrips_generated_logs() {
        let catalog = Catalog::generate(Domain::Fashion, 2000, 5);
        let config = QueryConfig {
            num_queries: 60,
            ..QueryConfig::default()
        };
        let log = generate_queries(&catalog, &config);
        let text = write_query_log(&log);
        let parsed = parse_query_log(&text).expect("own output parses");
        assert_eq!(parsed.queries.len(), log.queries.len());
        for (a, b) in parsed.queries.iter().zip(&log.queries) {
            assert_eq!(a.text, b.text);
            assert!((a.daily_frequency - b.daily_frequency).abs() < 1e-9);
            assert_eq!(a.results.len(), b.results.len());
        }
    }

    #[test]
    fn reports_line_numbers() {
        let e = parse_query_log("good\t1\t1:0.5\nbad\tnope\t2:0.5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad frequency"));
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_query_log("only text\n").is_err());
        assert!(parse_query_log("q\t1\t\n").is_err());
        assert!(parse_query_log("q\t1\t5:2.0\n").is_err(), "relevance > 1");
        assert!(parse_query_log("q\t-1\t5:0.5\n").is_err(), "negative freq");
        assert!(parse_query_log("q\t1\t5:0.5\textra\n").is_err());
    }

    #[test]
    fn results_sorted_by_relevance() {
        let log = parse_query_log("q\t1\t1:0.2,2:0.9,3:0.5\n").expect("valid");
        let rels: Vec<f32> = log.queries[0].results.iter().map(|r| r.1).collect();
        assert_eq!(rels, vec![0.9, 0.5, 0.2]);
    }
}
