//! # oct-datagen — synthetic e-commerce data for OCT experiments
//!
//! The paper evaluates on proprietary query logs of a large e-commerce
//! platform ("XYZ": datasets A–D) plus public datasets (dataset E). Neither
//! is redistributable, so this crate synthesizes workloads with the same
//! structural properties (see `DESIGN.md` §4 for the substitution argument):
//!
//! * [`catalog`] — product catalogs with correlated, Zipf-distributed
//!   attributes per domain (Fashion / Electronics) and derived titles;
//! * [`existing_tree`] — the manually-built tree baseline (ET), generated
//!   from the catalog's attribute hierarchy;
//! * [`queries`] — search-query logs: attribute-conjunction queries with
//!   Zipf frequencies and search-engine relevance noise (including the
//!   paper's "Nike Blazer"-style misclassifications);
//! * [`preprocess`] — the paper's §5.1 pipeline: frequency floor,
//!   branch-scatter cleaning against the existing tree, relevance cutoff,
//!   frequency weighting, and merging of near-duplicate result sets;
//! * [`datasets`] — named dataset specs mirroring A–E with a scale knob;
//! * [`embeddings`] — deterministic "semantic" item embeddings standing in
//!   for the paper's domain-tuned title-embedding model (IC-S input);
//! * [`tfidf`] — the tf-idf category-cohesiveness metric of §5.4;
//! * [`loader`] — TSV interchange so platforms can feed their own logs;
//! * [`trends`] — time-windowed logs and recency weighting (trend capture).

#![warn(missing_docs)]

pub mod catalog;
pub mod datasets;
pub mod embeddings;
pub mod existing_tree;
pub mod loader;
pub mod preprocess;
pub mod queries;
pub mod tfidf;
pub mod trends;

pub use catalog::{Catalog, Domain};
pub use datasets::{generate, DatasetName, DatasetSpec, GeneratedDataset};
