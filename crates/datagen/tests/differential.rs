//! Scalar-vs-packed differential suite on the generated datasets: the
//! packed-bitmap substrate must be an invisible substitution. On small
//! renditions of the paper's datasets A and B this proves
//!
//! * production tree scoring (CSR index + parallel aggregation) is
//!   bit-identical to the naive scalar `ItemSet`-union reference scorer,
//! * `intersecting_pairs` (CSR inverted-index co-occurrence counting)
//!   matches brute-force scalar pair enumeration exactly, and
//! * `classify_pair` and `classify_pair_packed` agree on every
//!   intersecting pair for every similarity variant.

use oct_core::baselines::{ic_q, BaselineConfig};
use oct_core::conflict::{classify_pair, classify_pair_packed, intersecting_pairs};
use oct_core::input::Instance;
use oct_core::score::{score_tree, score_tree_reference};
use oct_core::similarity::Similarity;
use oct_datagen::{generate, DatasetName};

/// The dataset grid: paper datasets A (Fashion, weighted) and B at small
/// scale, under different variants so both arithmetic families are hit.
fn grid() -> Vec<(DatasetName, f64, Similarity)> {
    vec![
        (DatasetName::A, 0.05, Similarity::jaccard_threshold(0.8)),
        (DatasetName::A, 0.05, Similarity::exact()),
        (DatasetName::B, 0.03, Similarity::f1_threshold(0.6)),
        (DatasetName::B, 0.03, Similarity::perfect_recall(0.7)),
    ]
}

#[test]
fn production_scoring_is_bit_identical_to_reference() {
    for (name, scale, similarity) in grid() {
        let ds = generate(name, scale, similarity);
        let result = ic_q(&ds.instance, &BaselineConfig::default()).expect("valid instance");
        let reference = score_tree_reference(&ds.instance, &result.tree);
        let production = score_tree(&ds.instance, &result.tree);
        assert_eq!(
            production.total.to_bits(),
            reference.total.to_bits(),
            "{name:?}: total diverges: {} vs {}",
            production.total,
            reference.total
        );
        assert_eq!(
            production.normalized.to_bits(),
            reference.normalized.to_bits(),
            "{name:?}: normalized diverges"
        );
        assert_eq!(production, reference, "{name:?}: full TreeScore diverges");
    }
}

/// Brute-force scalar pair enumeration: every `i < j` with a non-empty
/// intersection, ordered by rank, with bound-1 effective intersections.
fn brute_force_pairs(instance: &Instance) -> Vec<(u32, u32, u32, u32)> {
    let ranks = instance.ranks();
    let n = instance.num_sets();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let qa = &instance.sets[i].items;
            let qb = &instance.sets[j].items;
            let shared = qa.intersection(qb);
            if shared.is_empty() {
                continue;
            }
            let eff = shared
                .iter()
                .filter(|&item| instance.bound_of(item) == 1)
                .count() as u32;
            let (hi, lo) = if ranks[i] < ranks[j] {
                (i as u32, j as u32)
            } else {
                (j as u32, i as u32)
            };
            pairs.push((hi, lo, shared.len() as u32, eff));
        }
    }
    pairs.sort_unstable();
    pairs
}

#[test]
fn intersecting_pairs_match_brute_force_enumeration() {
    for (name, scale, similarity) in grid() {
        let ds = generate(name, scale, similarity);
        let expected = brute_force_pairs(&ds.instance);
        let actual: Vec<(u32, u32, u32, u32)> = intersecting_pairs(&ds.instance, 2)
            .iter()
            .map(|p| (p.hi, p.lo, p.inter, p.eff_inter))
            .collect();
        assert_eq!(
            actual.len(),
            expected.len(),
            "{name:?}: pair count diverges"
        );
        assert_eq!(actual, expected, "{name:?}: pair list diverges");
    }
}

#[test]
fn pair_classification_agrees_across_substrates() {
    for (name, scale, similarity) in grid() {
        let ds = generate(name, scale, similarity);
        let packed = ds.instance.packed_sets();
        for pair in intersecting_pairs(&ds.instance, 1) {
            let (hi, lo) = (pair.hi as usize, pair.lo as usize);
            let (inter, eff) = (pair.inter as usize, pair.eff_inter as usize);
            let scalar = classify_pair(&ds.instance, hi, lo, inter, eff);
            let bitset = classify_pair_packed(&ds.instance, hi, lo, inter, eff, &packed);
            assert_eq!(
                scalar, bitset,
                "{name:?} {:?}: pair ({hi},{lo}) classified differently",
                similarity.kind
            );
        }
    }
}
