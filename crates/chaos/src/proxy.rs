//! The TCP interposer that applies one [`FaultAction`] per connection.
//!
//! A [`ChaosProxy`] binds a listen address, dials one upstream, and pumps
//! bytes both ways through a fault [`Shaper`]. Which fault a connection
//! gets is decided *only* by `plan.action(proxy_id, accept_index)` — the
//! proxy itself holds no randomness, so a fleet of proxies replays a run
//! exactly from the plan's seed.
//!
//! Clearing faults mid-scenario is modelled the way operators do it:
//! [`StopHandle::stop`] the proxy (its listener closes, every pump shuts
//! both sockets), then bind a fresh proxy on the *same* address with a
//! new plan. The std listener sets `SO_REUSEADDR` on Unix, so the rebind
//! is immediate.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::plan::{FaultAction, FaultPlan};

/// Accept-loop poll interval when no connection is pending.
const ACCEPT_INTERVAL: Duration = Duration::from_millis(5);
/// Socket read timeout — the cadence at which pumps notice a stop.
const READ_INTERVAL: Duration = Duration::from_millis(50);
/// Dial timeout for the upstream side of a proxied connection.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Cap on buffered line-reassembly state for duplicate/reorder shaping.
const MAX_HELD: usize = 1 << 20;

/// State shared between the accept loop, the pumps, and stop handles.
struct Shared {
    upstream: String,
    plan: FaultPlan,
    proxy_id: u32,
    stop: AtomicBool,
    accepted: AtomicU64,
    active: AtomicUsize,
}

/// A bound, not-yet-running fault proxy. [`ChaosProxy::run`] blocks until
/// stopped.
pub struct ChaosProxy {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Stops a running [`ChaosProxy`] from another thread; cloneable.
#[derive(Clone)]
pub struct StopHandle {
    shared: Arc<Shared>,
}

impl StopHandle {
    /// Requests shutdown: the accept loop exits, every active pump closes
    /// both of its sockets, and [`ChaosProxy::run`] returns after joining
    /// the connection threads (so the listen address is free to rebind).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Connections currently being pumped — drops back to zero once
    /// clients disconnect, which is the proxy-side leak check.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Total connections accepted so far (the next accept gets this as
    /// its plan index).
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }
}

impl ChaosProxy {
    /// Binds `listen` (port 0 picks a free port) fronting `upstream`.
    /// `proxy_id` keys this proxy's column of the plan.
    pub fn bind(
        listen: &str,
        upstream: String,
        plan: FaultPlan,
        proxy_id: u32,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                upstream,
                plan,
                proxy_id,
                stop: AtomicBool::new(false),
                accepted: AtomicU64::new(0),
                active: AtomicUsize::new(0),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this proxy from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and pumps connections until [`StopHandle::stop`]. Joins
    /// every connection thread before returning, so a caller that wants
    /// to clear faults can rebind the same address immediately after.
    pub fn run(self) -> io::Result<()> {
        let Self { listener, shared } = self;
        let mut pumps: Vec<JoinHandle<()>> = Vec::new();
        while !shared.stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((conn, _peer)) => {
                    let index = shared.accepted.fetch_add(1, Ordering::Relaxed);
                    let action = shared.plan.action(shared.proxy_id, index);
                    let shared = Arc::clone(&shared);
                    pumps.push(thread::spawn(move || {
                        handle_connection(shared, conn, action)
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            pumps.retain(|p| !p.is_finished());
        }
        for p in pumps {
            let _ = p.join();
        }
        Ok(())
    }
}

/// Severs both directions of both sockets, best-effort; wakes the peer
/// pump out of its blocking read.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn handle_connection(shared: Arc<Shared>, client: TcpStream, action: FaultAction) {
    shared.active.fetch_add(1, Ordering::Relaxed);
    let _ = client.set_nodelay(true);
    if action == FaultAction::BlackHole {
        black_hole(&shared, client);
    } else {
        run_pumps(&shared, client, action);
    }
    shared.active.fetch_sub(1, Ordering::Relaxed);
}

fn run_pumps(shared: &Arc<Shared>, client: TcpStream, action: FaultAction) {
    let upstream = match resolve(&shared.upstream)
        .and_then(|addr| TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT))
    {
        Ok(upstream) => upstream,
        // Upstream unreachable: dropping the client here is itself a
        // faithful fault (connection accepted, then immediately closed).
        Err(_) => return,
    };
    let _ = upstream.set_nodelay(true);

    let (request_shaper, response_shaper) = Shaper::pair(&action);
    let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
        sever(&client, &upstream);
        return;
    };

    // Request pump in a helper thread, response pump inline. Each pump
    // severs both sockets on exit, so whichever direction ends first
    // (EOF, error, fired reset, proxy stop) wakes the other out of its
    // blocking read and the whole connection tears down together.
    let request_pump = {
        let shared = Arc::clone(shared);
        thread::spawn(move || pump(client_r, upstream_r, request_shaper, &shared))
    };
    pump(upstream, client, response_shaper, shared);
    let _ = request_pump.join();
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "upstream resolved to nothing"))
}

/// Reads and discards client bytes forever; exits on EOF, error, or stop.
fn black_hole(shared: &Shared, client: TcpStream) {
    let mut client = client;
    let _ = client.set_read_timeout(Some(READ_INTERVAL));
    let mut sink = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        match client.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Copies `src` → `dst` through `shaper` until EOF, error, a fired reset,
/// the proxy-wide stop flag, or the peer pump severing the sockets. Both
/// sockets are severed on every exit path; the line-protocol clients this
/// harness fronts only ever close a connection whole, so half-close
/// fidelity is not worth the extra state.
fn pump(mut src: TcpStream, mut dst: TcpStream, mut shaper: Shaper, shared: &Shared) {
    let _ = src.set_read_timeout(Some(READ_INTERVAL));
    let mut chunk = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        match src.read(&mut chunk) {
            Ok(0) => {
                let _ = shaper.finish(&mut dst);
                break;
            }
            Ok(n) => match shaper.forward(&mut dst, &chunk[..n]) {
                Ok(true) => {}
                // A reset fired (or the write side died): sever now so
                // the client observes a mid-response close.
                Ok(false) | Err(_) => break,
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    sever(&src, &dst);
}

/// Streaming fault state for one direction of one connection.
struct Shaper {
    mode: ShaperMode,
    /// Bytes already forwarded in this direction.
    forwarded: u64,
    /// Line-reassembly buffer for duplicate/reorder shaping.
    held: Vec<u8>,
    /// A complete line waiting for its reorder partner.
    pending: Option<Vec<u8>>,
}

enum ShaperMode {
    Pass,
    Delay(Duration),
    ResetAfter(u64),
    Corrupt { offset: u64, mask: u8 },
    Trickle { chunk: usize, stall: Duration },
    Duplicate,
    Reorder,
}

impl Shaper {
    /// Splits one connection action into (request-direction,
    /// response-direction) shapers.
    fn pair(action: &FaultAction) -> (Shaper, Shaper) {
        let request = match action {
            FaultAction::Delay { request, .. } => ShaperMode::Delay(*request),
            _ => ShaperMode::Pass,
        };
        let response = match action {
            FaultAction::Pass | FaultAction::BlackHole => ShaperMode::Pass,
            FaultAction::Delay { response, .. } => ShaperMode::Delay(*response),
            FaultAction::ResetAfter { offset } => ShaperMode::ResetAfter(*offset),
            FaultAction::Corrupt { offset, mask } => ShaperMode::Corrupt {
                offset: *offset,
                mask: *mask,
            },
            FaultAction::Trickle { chunk, stall } => ShaperMode::Trickle {
                chunk: *chunk,
                stall: *stall,
            },
            FaultAction::Duplicate => ShaperMode::Duplicate,
            FaultAction::Reorder => ShaperMode::Reorder,
        };
        (Self::new(request), Self::new(response))
    }

    fn new(mode: ShaperMode) -> Self {
        Self {
            mode,
            forwarded: 0,
            held: Vec::new(),
            pending: None,
        }
    }

    /// Forwards one chunk. `Ok(false)` means a reset fired and the
    /// connection must be severed now.
    fn forward(&mut self, dst: &mut TcpStream, data: &[u8]) -> io::Result<bool> {
        match &self.mode {
            ShaperMode::Pass => {
                dst.write_all(data)?;
            }
            ShaperMode::Delay(lag) => {
                thread::sleep(*lag);
                dst.write_all(data)?;
            }
            ShaperMode::ResetAfter(offset) => {
                let remaining = offset.saturating_sub(self.forwarded);
                if (data.len() as u64) <= remaining {
                    dst.write_all(data)?;
                } else {
                    dst.write_all(&data[..remaining as usize])?;
                    dst.flush()?;
                    self.forwarded += remaining;
                    return Ok(false);
                }
            }
            ShaperMode::Corrupt { offset, mask } => {
                let start = self.forwarded;
                let end = start + data.len() as u64;
                if (start..end).contains(offset) {
                    let mut damaged = data.to_vec();
                    damaged[(offset - start) as usize] ^= mask;
                    dst.write_all(&damaged)?;
                } else {
                    dst.write_all(data)?;
                }
            }
            ShaperMode::Trickle { chunk, stall } => {
                let (chunk, stall) = (*chunk, *stall);
                for slice in data.chunks(chunk.max(1)) {
                    dst.write_all(slice)?;
                    dst.flush()?;
                    thread::sleep(stall);
                }
            }
            ShaperMode::Duplicate | ShaperMode::Reorder => {
                self.held.extend_from_slice(data);
                self.drain_lines(dst)?;
            }
        }
        self.forwarded += data.len() as u64;
        Ok(true)
    }

    /// Emits every complete line buffered so far under the line-granular
    /// modes (duplicate / reorder).
    fn drain_lines(&mut self, dst: &mut TcpStream) -> io::Result<()> {
        while let Some(at) = self.held.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.held.drain(..=at).collect();
            match self.mode {
                ShaperMode::Duplicate => {
                    dst.write_all(&line)?;
                    dst.write_all(&line)?;
                }
                ShaperMode::Reorder => match self.pending.take() {
                    // Second of a pair: send it first, then the held one
                    // — adjacent lines swapped.
                    Some(first) => {
                        dst.write_all(&line)?;
                        dst.write_all(&first)?;
                    }
                    None => self.pending = Some(line),
                },
                _ => dst.write_all(&line)?,
            }
        }
        // A peer that never sends a newline must not buffer unboundedly.
        if self.held.len() > MAX_HELD {
            dst.write_all(&self.held)?;
            self.held.clear();
        }
        Ok(())
    }

    /// Flushes anything still held when the source reaches EOF (an odd
    /// trailing reorder line, a partial line with no newline).
    fn finish(&mut self, dst: &mut TcpStream) -> io::Result<()> {
        if let Some(pending) = self.pending.take() {
            dst.write_all(&pending)?;
        }
        if !self.held.is_empty() {
            let held = std::mem::take(&mut self.held);
            dst.write_all(&held)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosConfig;
    use std::io::{BufRead, BufReader};
    use std::time::Instant;

    /// A line-echo upstream: reads lines, writes them back, one
    /// connection at a time, until the listener is dropped.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("addr");
        let join = thread::spawn(move || {
            while let Ok((conn, _)) = listener.accept() {
                let mut reader = BufReader::new(conn.try_clone().expect("clone"));
                let mut conn = conn;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            if conn.write_all(line.as_bytes()).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, join)
    }

    fn start_proxy(upstream: SocketAddr, config: ChaosConfig) -> (SocketAddr, StopHandle) {
        let proxy = ChaosProxy::bind(
            "127.0.0.1:0",
            upstream.to_string(),
            FaultPlan::new(config),
            0,
        )
        .expect("bind proxy");
        let addr = proxy.local_addr().expect("proxy addr");
        let stop = proxy.stop_handle();
        thread::spawn(move || {
            let _ = proxy.run();
        });
        (addr, stop)
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> io::Result<String> {
        let conn = TcpStream::connect(addr)?;
        conn.set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut writer = conn.try_clone()?;
        writeln!(writer, "{line}")?;
        let mut reader = BufReader::new(conn);
        let mut out = String::new();
        reader.read_line(&mut out)?;
        if out.is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        }
        Ok(out.trim_end().to_owned())
    }

    #[test]
    fn passthrough_roundtrips() {
        let (upstream, _join) = echo_server();
        let (addr, stop) = start_proxy(upstream, ChaosConfig::passthrough(1));
        for i in 0..3 {
            let msg = format!("hello {i}");
            assert_eq!(roundtrip(addr, &msg).expect("echo"), msg);
        }
        stop.stop();
    }

    #[test]
    fn blackhole_never_answers() {
        let (upstream, _join) = echo_server();
        let (addr, stop) = start_proxy(upstream, ChaosConfig::blackhole(1));
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        let mut writer = conn.try_clone().expect("clone");
        writeln!(writer, "anyone there").expect("write");
        let mut reader = BufReader::new(conn);
        let mut out = String::new();
        let err = reader.read_line(&mut out).expect_err("must time out");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected {err:?}"
        );
        assert!(out.is_empty());
        stop.stop();
    }

    #[test]
    fn reset_truncates_the_stream() {
        let (upstream, _join) = echo_server();
        let (addr, stop) = start_proxy(upstream, ChaosConfig::resets(1));
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut writer = conn.try_clone().expect("clone");
        let long = "x".repeat(8192);
        // Keep pipelining until the seeded offset (< 16 + 2048 bytes of
        // response) fires and the connection dies mid-stream.
        let mut total = 0usize;
        let mut reader = BufReader::new(conn);
        let mut saw_eof = false;
        for _ in 0..8 {
            if writeln!(writer, "{long}").is_err() {
                saw_eof = true;
                break;
            }
            let _ = writer.flush();
            let mut out = String::new();
            match reader.read_line(&mut out) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) if n < long.len() + 1 => {
                    saw_eof = true; // truncated line: reset mid-response
                    break;
                }
                Ok(n) => total += n,
                Err(_) => {
                    saw_eof = true;
                    break;
                }
            }
        }
        assert!(saw_eof, "reset never fired after {total} clean bytes");
        assert!(total < 16 + 2048 + 8192, "reset fired far past its offset");
        stop.stop();
    }

    #[test]
    fn duplicate_doubles_every_line() {
        let (upstream, _join) = echo_server();
        let config = ChaosConfig {
            pass_weight: 0,
            duplicate_weight: 1,
            ..ChaosConfig::passthrough(1)
        };
        let (addr, stop) = start_proxy(upstream, config);
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut writer = conn.try_clone().expect("clone");
        writeln!(writer, "once").expect("write");
        let mut reader = BufReader::new(conn);
        for _ in 0..2 {
            let mut out = String::new();
            reader.read_line(&mut out).expect("read");
            assert_eq!(out.trim_end(), "once");
        }
        stop.stop();
    }

    #[test]
    fn reorder_swaps_adjacent_lines() {
        let (upstream, _join) = echo_server();
        let config = ChaosConfig {
            pass_weight: 0,
            reorder_weight: 1,
            ..ChaosConfig::passthrough(1)
        };
        let (addr, stop) = start_proxy(upstream, config);
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut writer = conn.try_clone().expect("clone");
        writeln!(writer, "first").expect("write");
        writeln!(writer, "second").expect("write");
        let mut reader = BufReader::new(conn);
        let mut got = Vec::new();
        for _ in 0..2 {
            let mut out = String::new();
            reader.read_line(&mut out).expect("read");
            got.push(out.trim_end().to_owned());
        }
        assert_eq!(got, vec!["second".to_owned(), "first".to_owned()]);
        stop.stop();
    }

    #[test]
    fn delay_profile_adds_latency() {
        let (upstream, _join) = echo_server();
        let (addr, stop) = start_proxy(upstream, ChaosConfig::delays(1));
        let started = Instant::now();
        assert_eq!(roundtrip(addr, "slow").expect("echo"), "slow");
        assert!(
            started.elapsed() >= Duration::from_millis(2),
            "delays profile added no measurable latency"
        );
        stop.stop();
    }

    #[test]
    fn stop_frees_the_address_for_rebind() {
        let (upstream, _join) = echo_server();
        let proxy = ChaosProxy::bind(
            "127.0.0.1:0",
            upstream.to_string(),
            FaultPlan::new(ChaosConfig::blackhole(1)),
            0,
        )
        .expect("bind");
        let addr = proxy.local_addr().expect("addr");
        let stop = proxy.stop_handle();
        let join = thread::spawn(move || proxy.run());
        stop.stop();
        join.join().expect("join").expect("run");
        // Faults cleared: same address, passthrough plan.
        let relisten = ChaosProxy::bind(
            &addr.to_string(),
            upstream.to_string(),
            FaultPlan::new(ChaosConfig::passthrough(1)),
            0,
        )
        .expect("rebind on the old address");
        let stop = relisten.stop_handle();
        thread::spawn(move || {
            let _ = relisten.run();
        });
        assert_eq!(roundtrip(addr, "back").expect("echo"), "back");
        // Leak check: once the client disconnects, active returns to 0.
        let deadline = Instant::now() + Duration::from_secs(5);
        while stop.active_connections() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(stop.active_connections(), 0, "pump leaked a connection");
        stop.stop();
    }
}
