//! Vocabulary for asserting router contracts under chaos.
//!
//! The chaos suites promise the client a *typed* experience no matter
//! what the network does: every response line is well-formed protocol
//! (`OK …`, `OVERLOADED …`, or `ERR …`), degradation is expressed as
//! `partial=1`, and nothing leaks. This module provides the shared
//! classifier and tallies those suites assert with, plus the fd-count
//! probe behind the no-connection-leak invariant.

/// Classification of one client-visible response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineKind {
    /// A well-formed success line (`OK …`) with no partial marker.
    Ok,
    /// A well-formed success line carrying `partial=1` — typed
    /// degradation, the only acceptable face of whole-shard loss.
    OkPartial,
    /// A typed load-shed line (`OVERLOADED queue=N`).
    Overloaded,
    /// A typed error line (`ERR code: message`).
    Err,
    /// Anything else — corrupted, truncated, or non-protocol bytes. A
    /// single garbage line is an invariant violation.
    Garbage,
}

impl LineKind {
    /// `true` for every well-formed protocol line (everything but
    /// [`LineKind::Garbage`]).
    pub fn is_typed(self) -> bool {
        !matches!(self, LineKind::Garbage)
    }
}

/// Classifies one response line against the serving protocol's framing.
pub fn classify_line(line: &str) -> LineKind {
    let line = line.trim_end_matches(['\r', '\n']);
    if line == "OK" || line.starts_with("OK ") {
        if line.contains("partial=1") {
            LineKind::OkPartial
        } else {
            LineKind::Ok
        }
    } else if line == "OVERLOADED" || line.starts_with("OVERLOADED ") {
        LineKind::Overloaded
    } else if line.starts_with("ERR ") {
        LineKind::Err
    } else {
        LineKind::Garbage
    }
}

/// Running tallies of client-visible line kinds over a chaos scenario.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct InvariantTally {
    /// Clean `OK` lines.
    pub ok: u64,
    /// `OK … partial=1` lines.
    pub partial: u64,
    /// `OVERLOADED` sheds.
    pub overloaded: u64,
    /// Typed `ERR` lines.
    pub err: u64,
    /// Non-protocol lines — must stay zero under every fault mix.
    pub garbage: u64,
}

impl InvariantTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies `line`, folds it into the tally, and returns its kind.
    pub fn observe(&mut self, line: &str) -> LineKind {
        let kind = classify_line(line);
        match kind {
            LineKind::Ok => self.ok += 1,
            LineKind::OkPartial => self.partial += 1,
            LineKind::Overloaded => self.overloaded += 1,
            LineKind::Err => self.err += 1,
            LineKind::Garbage => self.garbage += 1,
        }
        kind
    }

    /// Total lines observed.
    pub fn total(&self) -> u64 {
        self.ok + self.partial + self.overloaded + self.err + self.garbage
    }

    /// Lines that were well-formed protocol, whatever their verdict.
    pub fn typed(&self) -> u64 {
        self.total() - self.garbage
    }

    /// The "zero client-visible failures" invariant: while every shard
    /// keeps ≥ 1 reachable replica, nothing the client sees may be an
    /// error, a shed, a partial, or garbage.
    pub fn clean(&self) -> bool {
        self.err == 0 && self.garbage == 0 && self.overloaded == 0 && self.partial == 0
    }
}

/// Open file descriptors of this process, read from `/proc/self/fd`.
/// Returns `None` where procfs is unavailable (non-Linux), in which case
/// the leak invariant is skipped rather than guessed at.
pub fn fd_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/fd")
        .ok()
        .map(|entries| entries.count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_protocol_surface() {
        assert_eq!(
            classify_line("OK COVER epoch=3 cat=7 sim=1.0\n"),
            LineKind::Ok
        );
        assert_eq!(
            classify_line("OK COVER epoch=3 cat=- partial=1 missing=0"),
            LineKind::OkPartial
        );
        assert_eq!(classify_line("OVERLOADED queue=64"), LineKind::Overloaded);
        assert_eq!(
            classify_line("ERR bad-request: unknown verb"),
            LineKind::Err
        );
        assert_eq!(classify_line("OKAY not a protocol line"), LineKind::Garbage);
        assert_eq!(classify_line("OK\u{fffd}garbled"), LineKind::Garbage);
        assert_eq!(classify_line(""), LineKind::Garbage);
        assert!(LineKind::Err.is_typed());
        assert!(!LineKind::Garbage.is_typed());
    }

    #[test]
    fn tally_folds_and_judges() {
        let mut tally = InvariantTally::new();
        tally.observe("OK PONG epoch=0");
        tally.observe("OK COVER partial=1 missing=2");
        tally.observe("ERR internal: boom");
        tally.observe("\u{1}\u{2}\u{3}");
        assert_eq!(tally.total(), 4);
        assert_eq!(tally.typed(), 3);
        assert_eq!(tally.garbage, 1);
        assert!(!tally.clean());

        let mut clean = InvariantTally::new();
        clean.observe("OK PONG epoch=0");
        assert!(clean.clean());
    }

    #[test]
    fn fd_count_is_positive_on_linux() {
        if let Some(count) = fd_count() {
            assert!(count > 0, "a running process holds at least stdio");
        }
    }
}
