//! Deterministic network-chaos harness for the serving stack.
//!
//! The serving tiers (`oct-serve`, `oct-router`) are proven against
//! process death and malformed lines; this crate supplies the missing
//! adversary — the *network*. A [`ChaosProxy`] interposes on any TCP hop
//! (router ↔ replica, loadgen ↔ router) and injects faults drawn from a
//! [`FaultPlan`]: a pure function of `(seed, config)`, so any failing run
//! replays byte-identically from its seed.
//!
//! ```text
//! client ──▶ ChaosProxy(plan.action(proxy, conn)) ──▶ upstream
//!               │ Pass / Delay / ResetAfter / BlackHole
//!               │ Corrupt / Trickle / Duplicate / Reorder
//!               ▼
//!            per-connection, per-direction fault shaping
//! ```
//!
//! Three layers, no dependencies beyond `std`:
//!
//! - [`plan`] — the seeded schedule: [`ChaosConfig`] weights,
//!   [`FaultAction`] primitives, and the [`FaultPlan`] that maps
//!   `(proxy id, connection index)` to an action deterministically.
//! - [`proxy`] — the TCP interposer that applies one action to one
//!   proxied connection, with a [`StopHandle`] for clearing faults (stop,
//!   then rebind the same address with a new plan).
//! - [`invariants`] — the checker vocabulary: classify client-visible
//!   lines as typed protocol or garbage ([`classify_line`]), tally them
//!   ([`InvariantTally`]), and watch process fd counts ([`fd_count`]) for
//!   connection leaks.
//!
//! The router contracts this harness asserts (see DESIGN.md §18): zero
//! client-visible failures while ≥ 1 replica per shard is reachable;
//! typed `partial=1` — never `ERR`, never garbage — under whole-shard
//! black-hole; sticky degraded `STATS`; byte-identical recovery once
//! faults clear; and no worker or connection leak across a fault cycle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod invariants;
pub mod plan;
pub mod proxy;

pub use invariants::{classify_line, fd_count, InvariantTally, LineKind};
pub use plan::{ChaosConfig, FaultAction, FaultPlan};
pub use proxy::{ChaosProxy, StopHandle};
