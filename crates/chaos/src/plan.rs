//! The seeded fault schedule: pure, replayable, printable.
//!
//! A [`FaultPlan`] is a *function*, not a stream: `action(proxy, conn)`
//! depends only on the plan's [`ChaosConfig`] (seed included), never on
//! wall-clock, thread timing, or call order. Two processes holding the
//! same config compute the same schedule, which is what makes a failing
//! chaos run replayable — re-run the same seed and every connection draws
//! the same fault at the same position.

use std::time::Duration;

/// One fault applied to one proxied connection.
///
/// Request bytes (client → upstream) are forwarded verbatim except under
/// [`FaultAction::Delay`]; all other shaping applies to response bytes
/// (upstream → client), where the interesting failure modes live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward both directions untouched.
    Pass,
    /// Sleep before forwarding each chunk, per direction.
    Delay {
        /// Added latency per request-direction chunk.
        request: Duration,
        /// Added latency per response-direction chunk.
        response: Duration,
    },
    /// Forward exactly `offset` response bytes, then close both sides
    /// mid-stream — the classic reset-during-response.
    ResetAfter {
        /// Response bytes forwarded before the connection is severed.
        offset: u64,
    },
    /// Accept the connection and swallow every request byte; never dial
    /// the upstream, never respond. Models an unreachable-but-accepting
    /// peer that only timeouts can detect.
    BlackHole,
    /// XOR one response byte at an absolute stream offset. The mask keeps
    /// the high bit set, so the damaged byte is never printable ASCII and
    /// a corrupted protocol line cannot silently stay well-formed.
    Corrupt {
        /// Absolute response-stream offset of the damaged byte.
        offset: u64,
        /// XOR mask applied to that byte (high bit always set).
        mask: u8,
    },
    /// Partial writes: dribble the response in `chunk`-byte slices with a
    /// flush stall between them — the slowloris shape, server side.
    Trickle {
        /// Bytes per write before the next stall.
        chunk: usize,
        /// Stall between flushed slices.
        stall: Duration,
    },
    /// Send every complete response line twice — a byzantine peer that
    /// desynchronizes naive pipelined clients.
    Duplicate,
    /// Swap each adjacent pair of complete response lines — pipelined
    /// responses arriving out of order.
    Reorder,
}

impl FaultAction {
    /// Stable one-line description, used by `octree chaos --print-plan`
    /// (and therefore by the smoke test's replay `cmp`).
    pub fn describe(&self) -> String {
        match self {
            FaultAction::Pass => "pass".to_owned(),
            FaultAction::Delay { request, response } => format!(
                "delay request_ms={} response_ms={}",
                request.as_millis(),
                response.as_millis()
            ),
            FaultAction::ResetAfter { offset } => format!("reset offset={offset}"),
            FaultAction::BlackHole => "blackhole".to_owned(),
            FaultAction::Corrupt { offset, mask } => {
                format!("corrupt offset={offset} mask={mask:#04x}")
            }
            FaultAction::Trickle { chunk, stall } => {
                format!("trickle chunk={chunk} stall_ms={}", stall.as_millis())
            }
            FaultAction::Duplicate => "duplicate".to_owned(),
            FaultAction::Reorder => "reorder".to_owned(),
        }
    }
}

/// Fault mix and parameter ranges. Every knob is an integer so configs
/// compare exactly and the fingerprint is stable across platforms.
///
/// Weights are relative: a connection draws its action with probability
/// `weight / total`. A config whose weights are all zero acts as
/// passthrough.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Root of the schedule; same seed + same knobs ⇒ same plan.
    pub seed: u64,
    /// Weight of [`FaultAction::Pass`].
    pub pass_weight: u32,
    /// Weight of [`FaultAction::Delay`].
    pub delay_weight: u32,
    /// Weight of [`FaultAction::ResetAfter`].
    pub reset_weight: u32,
    /// Weight of [`FaultAction::BlackHole`].
    pub blackhole_weight: u32,
    /// Weight of [`FaultAction::Corrupt`].
    pub corrupt_weight: u32,
    /// Weight of [`FaultAction::Trickle`].
    pub trickle_weight: u32,
    /// Weight of [`FaultAction::Duplicate`].
    pub duplicate_weight: u32,
    /// Weight of [`FaultAction::Reorder`].
    pub reorder_weight: u32,
    /// Per-chunk delays are drawn from `1..=delay_ms_max` milliseconds.
    pub delay_ms_max: u64,
    /// Reset offsets are drawn from `16..16 + reset_offset_max` bytes, so
    /// a reset always lands mid-response rather than pre-banner.
    pub reset_offset_max: u64,
    /// Corrupt offsets are drawn from `0..corrupt_offset_max` bytes.
    pub corrupt_offset_max: u64,
    /// Trickle slice size in bytes.
    pub trickle_chunk: u64,
    /// Trickle stall between slices, milliseconds.
    pub trickle_stall_ms: u64,
}

impl ChaosConfig {
    /// Base knobs shared by every named profile.
    fn base(seed: u64) -> Self {
        Self {
            seed,
            pass_weight: 1,
            delay_weight: 0,
            reset_weight: 0,
            blackhole_weight: 0,
            corrupt_weight: 0,
            trickle_weight: 0,
            duplicate_weight: 0,
            reorder_weight: 0,
            delay_ms_max: 20,
            reset_offset_max: 2048,
            corrupt_offset_max: 256,
            trickle_chunk: 16,
            trickle_stall_ms: 5,
        }
    }

    /// No faults at all — the control arm, and the "faults cleared"
    /// profile a recovery phase rebinds with.
    pub fn passthrough(seed: u64) -> Self {
        Self::base(seed)
    }

    /// Latency spikes only: every connection is delayed, nothing breaks.
    pub fn delays(seed: u64) -> Self {
        Self {
            pass_weight: 0,
            delay_weight: 1,
            ..Self::base(seed)
        }
    }

    /// Connection resets only, at seeded byte offsets.
    pub fn resets(seed: u64) -> Self {
        Self {
            pass_weight: 0,
            reset_weight: 1,
            ..Self::base(seed)
        }
    }

    /// The standing production-incident mix: mostly clean, some delayed,
    /// a few reset or trickled connections. No black-holes and no
    /// corruption — this is the profile a router must absorb with *zero*
    /// client-visible failures.
    pub fn mixed(seed: u64) -> Self {
        Self {
            pass_weight: 10,
            delay_weight: 4,
            reset_weight: 1,
            trickle_weight: 1,
            ..Self::base(seed)
        }
    }

    /// Actively hostile peer: corrupted bytes, duplicated and reordered
    /// response lines. Clients must fail *typed* (parse error → transport
    /// error), never act on garbage.
    pub fn byzantine(seed: u64) -> Self {
        Self {
            pass_weight: 1,
            corrupt_weight: 2,
            duplicate_weight: 2,
            reorder_weight: 2,
            ..Self::base(seed)
        }
    }

    /// Every connection black-holed — whole-peer loss behind a live
    /// accept queue.
    pub fn blackhole(seed: u64) -> Self {
        Self {
            pass_weight: 0,
            blackhole_weight: 1,
            ..Self::base(seed)
        }
    }

    /// Looks up a named profile (`passthrough`, `delays`, `resets`,
    /// `mixed`, `byzantine`, `blackhole`).
    pub fn profile(name: &str, seed: u64) -> Option<Self> {
        match name {
            "passthrough" => Some(Self::passthrough(seed)),
            "delays" => Some(Self::delays(seed)),
            "resets" => Some(Self::resets(seed)),
            "mixed" => Some(Self::mixed(seed)),
            "byzantine" => Some(Self::byzantine(seed)),
            "blackhole" => Some(Self::blackhole(seed)),
            _ => None,
        }
    }

    fn weights(&self) -> [u32; 8] {
        [
            self.pass_weight,
            self.delay_weight,
            self.reset_weight,
            self.blackhole_weight,
            self.corrupt_weight,
            self.trickle_weight,
            self.duplicate_weight,
            self.reorder_weight,
        ]
    }
}

impl Default for ChaosConfig {
    /// The [`ChaosConfig::mixed`] profile at seed 0.
    fn default() -> Self {
        Self::mixed(0)
    }
}

/// The deterministic schedule: maps `(proxy id, connection index)` to a
/// [`FaultAction`] as a pure function of the config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    config: ChaosConfig,
}

/// The splitmix64 step used everywhere this workspace needs a cheap
/// deterministic stream (same idiom as the loadgen's key draws).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Wraps a config into a plan.
    pub fn new(config: ChaosConfig) -> Self {
        Self { config }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// The action for connection number `conn` accepted by proxy `proxy`.
    /// Pure: no state, no clock — the same arguments always return the
    /// same action.
    pub fn action(&self, proxy: u32, conn: u64) -> FaultAction {
        // Decorrelate the per-connection stream from the seed and the
        // proxy id, then draw everything the chosen action needs from it.
        let mut state = self.config.seed;
        let _ = splitmix64(&mut state);
        state ^= (u64::from(proxy).wrapping_add(1)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let _ = splitmix64(&mut state);
        state ^= conn.wrapping_add(1).wrapping_mul(0xA5A3_5E4B_57D3_C2A7);

        let weights = self.config.weights();
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        if total == 0 {
            return FaultAction::Pass;
        }
        let mut pick = splitmix64(&mut state) % total;
        let mut index = 0;
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if pick < w {
                index = i;
                break;
            }
            pick -= w;
        }
        let c = &self.config;
        match index {
            1 => FaultAction::Delay {
                request: Duration::from_millis(1 + splitmix64(&mut state) % c.delay_ms_max.max(1)),
                response: Duration::from_millis(1 + splitmix64(&mut state) % c.delay_ms_max.max(1)),
            },
            2 => FaultAction::ResetAfter {
                offset: 16 + splitmix64(&mut state) % c.reset_offset_max.max(1),
            },
            3 => FaultAction::BlackHole,
            4 => FaultAction::Corrupt {
                offset: splitmix64(&mut state) % c.corrupt_offset_max.max(1),
                mask: 0x80 | (splitmix64(&mut state) % 0x7F) as u8 | 0x01,
            },
            5 => FaultAction::Trickle {
                chunk: c.trickle_chunk.max(1) as usize,
                stall: Duration::from_millis(c.trickle_stall_ms),
            },
            6 => FaultAction::Duplicate,
            7 => FaultAction::Reorder,
            _ => FaultAction::Pass,
        }
    }

    /// Compact, stable fingerprint of the whole schedule — every knob the
    /// plan depends on, suitable for a BENCH env entry. Two runs with
    /// equal fingerprints injected identical fault sequences.
    pub fn fingerprint(&self) -> String {
        let c = &self.config;
        format!(
            "chaos-v1 seed={} weights={} delay<={}ms reset<16+{}B corrupt<{}B trickle={}B/{}ms",
            c.seed,
            c.weights().map(|w| w.to_string()).join("/"),
            c.delay_ms_max,
            c.reset_offset_max,
            c.corrupt_offset_max,
            c.trickle_chunk,
            c.trickle_stall_ms,
        )
    }

    /// One printable schedule row, used by `--print-plan`.
    pub fn describe(&self, proxy: u32, conn: u64) -> String {
        format!(
            "proxy={proxy} conn={conn} action={}",
            self.action(proxy, conn).describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(ChaosConfig::mixed(42));
        let b = FaultPlan::new(ChaosConfig::mixed(42));
        for proxy in 0..4 {
            for conn in 0..64 {
                assert_eq!(a.action(proxy, conn), b.action(proxy, conn));
                assert_eq!(a.describe(proxy, conn), b.describe(proxy, conn));
            }
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(ChaosConfig::mixed(1));
        let b = FaultPlan::new(ChaosConfig::mixed(2));
        let differs = (0..64).any(|conn| a.action(0, conn) != b.action(0, conn));
        assert!(differs, "seeds 1 and 2 produced identical schedules");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn proxies_decorrelate() {
        let plan = FaultPlan::new(ChaosConfig::mixed(7));
        let differs = (0..64).any(|conn| plan.action(0, conn) != plan.action(1, conn));
        assert!(differs, "proxy id does not enter the schedule");
    }

    #[test]
    fn single_weight_profiles_are_uniform() {
        let plan = FaultPlan::new(ChaosConfig::blackhole(9));
        for conn in 0..32 {
            assert_eq!(plan.action(3, conn), FaultAction::BlackHole);
        }
        let plan = FaultPlan::new(ChaosConfig::passthrough(9));
        for conn in 0..32 {
            assert_eq!(plan.action(3, conn), FaultAction::Pass);
        }
    }

    #[test]
    fn mixed_profile_draws_every_weighted_action() {
        let plan = FaultPlan::new(ChaosConfig::mixed(1234));
        let mut saw = [false; 4]; // pass, delay, reset, trickle
        for conn in 0..512 {
            match plan.action(0, conn) {
                FaultAction::Pass => saw[0] = true,
                FaultAction::Delay { request, response } => {
                    assert!(request.as_millis() >= 1 && request.as_millis() <= 20);
                    assert!(response.as_millis() >= 1 && response.as_millis() <= 20);
                    saw[1] = true;
                }
                FaultAction::ResetAfter { offset } => {
                    assert!((16..16 + 2048).contains(&offset));
                    saw[2] = true;
                }
                FaultAction::Trickle { .. } => saw[3] = true,
                other => panic!("mixed profile drew unweighted action {other:?}"),
            }
        }
        assert!(
            saw.iter().all(|&s| s),
            "512 draws missed an action: {saw:?}"
        );
    }

    #[test]
    fn corrupt_masks_always_damage_the_byte() {
        let plan = FaultPlan::new(ChaosConfig::byzantine(5));
        for conn in 0..256 {
            if let FaultAction::Corrupt { mask, .. } = plan.action(0, conn) {
                assert!(mask & 0x80 != 0, "mask {mask:#04x} keeps ASCII printable");
                assert_ne!(mask, 0, "zero mask is a no-op");
            }
        }
    }

    #[test]
    fn profile_lookup_matches_constructors() {
        assert_eq!(
            ChaosConfig::profile("mixed", 3),
            Some(ChaosConfig::mixed(3))
        );
        assert_eq!(ChaosConfig::profile("nope", 3), None);
    }
}
