//! End-to-end tests: a real server on a real socket, driven by the real
//! client. Each test binds port 0 and drains via its own [`DrainHandle`] or
//! the `SHUTDOWN` verb — never the process-global signal flag, because the
//! test binary runs tests concurrently in one process.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use oct_core::{persist, CategoryTree, Similarity, ROOT};
use oct_obs::{Metrics, PipelineReport};
use oct_serve::client;
use oct_serve::prelude::*;

/// Two root categories: `shoes` = {0, 1}, `tents` = {2, 3, 4, 5}.
fn test_tree() -> CategoryTree {
    let mut t = CategoryTree::new();
    let shoes = t.add_category(ROOT);
    let tents = t.add_category(ROOT);
    t.assign_items(shoes, [0, 1]);
    t.assign_items(tents, [2, 3, 4, 5]);
    t.set_label(shoes, "running shoes");
    t.set_label(tents, "dome tents");
    t
}

fn start(
    config: ServeConfig,
    tree: CategoryTree,
) -> (
    SocketAddr,
    DrainHandle,
    JoinHandle<std::io::Result<PipelineReport>>,
) {
    let server = Server::bind(config, ServingTree::build(tree, 16, 0, "test")).expect("bind");
    let addr = server.local_addr().expect("addr");
    let drain = server.drain_handle();
    let join = thread::spawn(move || server.run());
    (addr, drain, join)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        metrics: Metrics::new(true),
        drain_grace: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

#[test]
fn serves_the_full_protocol_and_drains_on_shutdown_verb() {
    let (addr, _drain, join) = start(quick_config(), test_tree());
    let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");

    match c.request(&Request::Ping).expect("ping") {
        Response::Pong { epoch } => assert_eq!(epoch, 0),
        other => panic!("unexpected {other:?}"),
    }

    match c
        .request(&Request::Categorize {
            items: vec![0, 1],
            shard: None,
        })
        .expect("categorize")
    {
        Response::Cover {
            cat,
            similarity,
            covered,
            degraded,
            label,
            ..
        } => {
            assert_eq!(cat, Some(1), "shoes is the exact cover");
            assert!((similarity - 1.0).abs() < 1e-9);
            assert!(covered);
            assert!(!degraded);
            assert_eq!(label.as_deref(), Some("running shoes"));
        }
        other => panic!("unexpected {other:?}"),
    }

    match c
        .request(&Request::Score {
            items: vec![2, 3],
            shard: None,
        })
        .expect("score")
    {
        Response::Cover { cat, label, .. } => {
            assert_eq!(cat, Some(2), "tents covers 2,3 best");
            assert_eq!(label, None, "SCORE is label-free");
        }
        other => panic!("unexpected {other:?}"),
    }

    match c.request(&Request::Navigate { cat: ROOT }).expect("nav") {
        Response::Nav { children, .. } => assert_eq!(children, vec![1, 2]),
        other => panic!("unexpected {other:?}"),
    }
    match c.request(&Request::Navigate { cat: 999 }).expect("nav bad") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("unexpected {other:?}"),
    }

    match c.request(&Request::Stats).expect("stats") {
        Response::Stats {
            categories, items, ..
        } => {
            assert_eq!(categories, 3, "root + 2");
            assert_eq!(items, 16);
        }
        other => panic!("unexpected {other:?}"),
    }

    // A malformed line must not kill the connection.
    assert!(matches!(
        c.request(&Request::Swap {
            path: "/definitely/not/a/file".into()
        }),
        Ok(Response::Error {
            code: ErrorCode::BadRequest,
            ..
        })
    ));
    assert!(matches!(
        c.request(&Request::Ping),
        Ok(Response::Pong { .. })
    ));

    assert!(matches!(
        c.request(&Request::Shutdown),
        Ok(Response::Draining)
    ));
    let report = join.join().expect("no panic").expect("clean run");
    assert!(report.counter("serve/requests").unwrap_or(0) >= 8);
    assert!(
        report.histogram("serve/latency").is_some(),
        "latency histogram flushed"
    );
}

#[test]
fn sheds_excess_connections_with_typed_overloaded() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..quick_config()
    };
    let (addr, drain, join) = start(config, test_tree());

    // Fill the single worker and the single queue slot with held-open
    // connections, then watch the next ones bounce.
    let held1 = Client::connect(addr, Duration::from_secs(5)).expect("held1");
    thread::sleep(Duration::from_millis(150)); // let the worker pop held1
    let held2 = Client::connect(addr, Duration::from_secs(5)).expect("held2");
    thread::sleep(Duration::from_millis(150)); // let held2 take the queue slot

    let mut sheds = 0;
    for _ in 0..3 {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).expect("read");
        let resp = Response::parse(&line).expect("typed response");
        assert!(resp.is_overloaded(), "expected OVERLOADED, got {resp:?}");
        sheds += 1;
    }
    assert_eq!(sheds, 3);

    drop(held1);
    drop(held2);
    drain.drain();
    let report = join.join().expect("no panic").expect("clean run");
    assert!(report.counter("serve/shed").unwrap_or(0) >= 3);
    assert!(report.counter("serve/accepted").unwrap_or(0) >= 5);
}

#[test]
fn zero_deadline_serves_fully_degraded_answers() {
    let config = ServeConfig {
        deadline_ms: Some(0),
        ..quick_config()
    };
    let (addr, drain, join) = start(config, test_tree());
    match client::one_shot(
        addr,
        &Request::Categorize {
            items: vec![0, 1],
            shard: None,
        },
    )
    .expect("query")
    {
        Response::Cover { degraded, cat, .. } => {
            assert!(degraded, "zero deadline must degrade immediately");
            assert_eq!(cat, None, "no candidate evaluated");
        }
        other => panic!("unexpected {other:?}"),
    }
    drain.drain();
    let report = join.join().expect("no panic").expect("clean run");
    assert!(report.counter("serve/degraded").unwrap_or(0) >= 1);
}

#[test]
fn hot_swap_publishes_atomically_under_concurrent_load() {
    // Epoch parity encodes which tree must be answering: even = A (shoes
    // {0,1} → sim 1.0 for query {0,1}), odd = B ({0,1,2,3} → sim 0.5).
    // Any response mixing an epoch with the other tree's score is a torn
    // read — exactly what the atomic swap must prevent.
    let tree_a = test_tree();
    let mut tree_b = CategoryTree::new();
    let wide = tree_b.add_category(ROOT);
    tree_b.assign_items(wide, [0, 1, 2, 3]);

    let dir = std::env::temp_dir().join(format!("oct-serve-swap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path_a = dir.join("a.oct");
    let path_b = dir.join("b.oct");
    std::fs::write(&path_a, persist::encode_tree(&tree_a)).expect("write a");
    std::fs::write(&path_b, persist::encode_tree(&tree_b)).expect("write b");

    let config = ServeConfig {
        workers: 4,
        similarity: Similarity::jaccard_cutoff(0.4),
        ..quick_config()
    };
    let (addr, drain, join) = start(config, tree_a);

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = std::sync::Arc::clone(&stop);
            thread::spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");
                let mut checked = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match c
                        .request(&Request::Score {
                            items: vec![0, 1],
                            shard: None,
                        })
                        .expect("score during swap")
                    {
                        Response::Cover {
                            epoch, similarity, ..
                        } => {
                            let expect = if epoch % 2 == 0 { 1.0 } else { 0.5 };
                            assert!(
                                (similarity - expect).abs() < 1e-9,
                                "torn read: epoch {epoch} answered sim {similarity}"
                            );
                            checked += 1;
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                checked
            })
        })
        .collect();

    let mut swapper = Client::connect(addr, Duration::from_secs(5)).expect("swapper");
    for round in 0..10 {
        let path = if round % 2 == 0 { &path_b } else { &path_a };
        match swapper
            .request(&Request::Swap {
                path: path.display().to_string(),
            })
            .expect("swap")
        {
            Response::Swapped { epoch, .. } => assert_eq!(epoch, round + 1),
            other => panic!("unexpected {other:?}"),
        }
        thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u32 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    assert!(total > 0, "readers actually overlapped the swaps");

    drain.drain();
    let report = join.join().expect("no panic").expect("clean run");
    assert_eq!(report.counter("serve/swaps"), Some(10));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_swap_keeps_the_old_epoch_serving() {
    // Regression: a failed SWAP must not bump the epoch or count under
    // serve/swaps — the old tree keeps answering, and the *next* good
    // SWAP's epoch proves the failures left no gap.
    let dir = std::env::temp_dir().join(format!("oct-serve-badswap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let garbage = dir.join("garbage.oct");
    std::fs::write(&garbage, b"definitely not a tree").expect("write garbage");
    let truncated = dir.join("truncated.oct");
    let good_bytes = persist::encode_tree(&test_tree());
    std::fs::write(&truncated, &good_bytes[..good_bytes.len() / 2]).expect("write truncated");
    let good = dir.join("good.oct");
    std::fs::write(&good, &good_bytes).expect("write good");

    let (addr, drain, join) = start(quick_config(), test_tree());
    let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");

    for bad in [
        "/definitely/not/a/file".to_owned(),
        garbage.display().to_string(),
        truncated.display().to_string(),
    ] {
        match c.request(&Request::Swap { path: bad }).expect("swap") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("unexpected {other:?}"),
        }
        // The old tree is still serving at the old epoch.
        match c
            .request(&Request::Categorize {
                items: vec![0, 1],
                shard: None,
            })
            .expect("categorize after failed swap")
        {
            Response::Cover {
                epoch,
                cat,
                similarity,
                ..
            } => {
                assert_eq!(epoch, 0, "failed swap must not bump the epoch");
                assert_eq!(cat, Some(1));
                assert!((similarity - 1.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // The first successful swap lands at epoch 1: the failures consumed
    // no epochs.
    match c
        .request(&Request::Swap {
            path: good.display().to_string(),
        })
        .expect("good swap")
    {
        Response::Swapped { epoch, .. } => assert_eq!(epoch, 1),
        other => panic!("unexpected {other:?}"),
    }

    drain.drain();
    let report = join.join().expect("no panic").expect("clean run");
    assert_eq!(
        report.counter("serve/swaps"),
        Some(1),
        "published swaps only"
    );
    assert_eq!(report.counter("serve/swap_failed"), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_answers_queued_work_then_exits_cleanly() {
    let config = ServeConfig {
        workers: 2,
        ..quick_config()
    };
    let (addr, drain, join) = start(config, test_tree());

    // A raw connection with a request already in the server's hands…
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    thread::sleep(Duration::from_millis(100)); // admitted + popped
    writeln!(conn, "PING").expect("send");
    let mut line = String::new();
    BufReader::new(conn.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("read");
    assert!(line.starts_with("OK PONG"), "pre-drain request answered");

    drain.drain();
    let report = join.join().expect("no panic").expect("clean run");
    assert!(!report.is_empty(), "metrics flushed on drain");
}

#[test]
fn slowloris_connections_are_cut_off_silently_after_the_idle_budget() {
    // A client that sends half a line and then stalls must be closed once
    // the cumulative idle budget is spent — with no ERR line (an error
    // would desync any pipelined bytes the client had buffered) — and the
    // close must be invisible to well-behaved connections.
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(200),
        ..quick_config()
    };
    let metrics = config.metrics.clone();
    let (addr, drain, join) = start(config, test_tree());

    let slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    (&slow).write_all(b"PI").expect("partial write");
    let mut reader = BufReader::new(slow);
    let mut out = String::new();
    let n = reader.read_line(&mut out).expect("read to EOF");
    assert_eq!(n, 0, "idle close is silent, not a response line: {out:?}");
    assert_eq!(
        metrics.report().counter("serve/idle_closed"),
        Some(1),
        "the cut-off is accounted"
    );

    // The polite neighbour is unaffected.
    let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");
    assert!(matches!(
        c.request(&Request::Ping).expect("ping"),
        Response::Pong { .. }
    ));

    drain.drain();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn connections_are_courteously_retired_after_the_request_cap() {
    // With `max_requests = 2`, a connection pipelining three requests gets
    // exactly two answers — the Nth response is written *before* the close,
    // so no answered request is ever lost — then EOF.
    let config = ServeConfig {
        max_requests: 2,
        ..quick_config()
    };
    let metrics = config.metrics.clone();
    let (addr, drain, join) = start(config, test_tree());

    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    (&conn).write_all(b"PING\nPING\nPING\n").expect("pipeline");
    let mut reader = BufReader::new(conn);
    for i in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.starts_with("OK PONG"), "response {i}: {line:?}");
    }
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read to EOF");
    assert_eq!(n, 0, "third request rides a retired connection: {line:?}");
    assert_eq!(metrics.report().counter("serve/conn_retired"), Some(1));

    // A fresh connection starts a fresh budget.
    let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");
    assert!(matches!(
        c.request(&Request::Ping).expect("ping"),
        Response::Pong { .. }
    ));

    drain.drain();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn navigate_topk_ranks_exactly_and_unknown_items_pin_the_cover() {
    let (addr, drain, join) = start(quick_config(), test_tree());
    let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");

    // Unknown ids count toward |q| (batch-scorer semantics): {2,3,4,999999}
    // against tents {2,3,4,5} is J = 3 / (4 + 4 − 3) = 0.6, not the 0.75 a
    // silently-shrunk query would give.
    match c
        .request(&Request::Categorize {
            items: vec![2, 3, 4, 999_999],
            shard: None,
        })
        .expect("categorize")
    {
        Response::Cover {
            cat,
            similarity,
            precision,
            ..
        } => {
            assert_eq!(cat, Some(2));
            assert!(
                (similarity - 0.6).abs() < 1e-9,
                "unknown item must dilute the query: {similarity}"
            );
            assert!((precision - 0.75).abs() < 1e-9);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Top-k over {0,1,2}: shoes J = 2/3 leads; the root (J = 3/6 = 0.5)
    // still clears the cutoff; tents (J = 1/6) falls below it and is
    // dropped. Scores travel with 6 decimals on the wire.
    match c
        .request(&Request::NavigateTopK {
            k: 5,
            items: vec![0, 1, 2],
            ef: None,
        })
        .expect("topk")
    {
        Response::TopK {
            k,
            degraded,
            results,
            ..
        } => {
            assert_eq!(k, 5);
            assert!(!degraded);
            assert_eq!(results.len(), 2, "{results:?}");
            assert_eq!(results[0].0, 1, "shoes first");
            assert!((results[0].1 - 2.0 / 3.0).abs() < 1e-6, "{results:?}");
            assert_eq!(results[1].0, ROOT);
            assert!((results[1].1 - 0.5).abs() < 1e-6);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Byte-identical across repeated runs on the wire (fixed seed, fixed
    // tree ⇒ same line, down to the formatting).
    let raw_line = |line: &str| {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        writeln!(conn, "{line}").expect("write");
        let mut out = String::new();
        BufReader::new(conn).read_line(&mut out).expect("read");
        out
    };
    let first = raw_line("NAVIGATE 2 items=0,1,2");
    let second = raw_line("NAVIGATE 2 items=0,1,2");
    assert_eq!(first, second, "top-k must be byte-identical across runs");
    assert!(first.starts_with("OK TOPK "), "{first}");

    // k = 0 is a bad request, not a crash or an empty OK.
    let bad = raw_line("NAVIGATE 0 items=1");
    assert!(bad.starts_with("ERR bad-request"), "{bad}");

    drain.drain();
    let _ = join.join().expect("no panic").expect("clean run");
}
