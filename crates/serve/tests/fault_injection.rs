//! Deterministic failure-path tests: every new failure mode in the serving
//! stack is driven through `oct_resilience::faults` fail points, not by
//! hoping a race shows up. The dev-dependency enables the
//! `fault-injection` feature, so `faults::fire("serve/request-panic")`
//! inside the server's compute path is live here.
//!
//! All tests hold `faults::serial_guard()` — the registry is process-global
//! and the server workers run in this process.

use std::thread;
use std::time::Duration;

use oct_core::{CategoryTree, ROOT};
use oct_obs::{Metrics, PipelineReport};
use oct_resilience::{faults, BreakerConfig, RetryPolicy};
use oct_serve::prelude::*;

fn tree() -> CategoryTree {
    let mut t = CategoryTree::new();
    let a = t.add_category(ROOT);
    t.assign_items(a, [0, 1, 2]);
    t
}

fn start(
    config: ServeConfig,
) -> (
    std::net::SocketAddr,
    DrainHandle,
    thread::JoinHandle<PipelineReport>,
) {
    let server = Server::bind(config, ServingTree::build(tree(), 8, 0, "test")).expect("bind");
    let addr = server.local_addr().expect("addr");
    let drain = server.drain_handle();
    let join = thread::spawn(move || server.run().expect("clean run"));
    (addr, drain, join)
}

#[test]
fn worker_panic_is_retried_and_the_request_still_succeeds() {
    let _guard = faults::serial_guard();
    faults::reset();
    let config = ServeConfig {
        metrics: Metrics::new(true),
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        drain_grace: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let (addr, drain, join) = start(config);
    let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");

    // First attempt panics inside the worker; the contained panic becomes
    // a transient failure, the retry succeeds, the client never notices.
    faults::arm("serve/request-panic", 1);
    match c
        .request(&Request::Categorize {
            items: vec![0, 1],
            shard: None,
        })
        .expect("request survives an injected panic")
    {
        Response::Cover { cat, covered, .. } => {
            assert_eq!(cat, Some(1));
            assert!(covered);
        }
        other => panic!("unexpected {other:?}"),
    }

    drain.drain();
    let report = join.join().expect("server thread");
    assert!(
        report.counter("serve/retries").unwrap_or(0) >= 1,
        "the recovery retry is visible in metrics"
    );
    assert_eq!(
        report.counter("serve/failures"),
        None,
        "the request did NOT fail"
    );
    faults::reset();
}

#[test]
fn retry_exhaustion_trips_the_breaker_and_a_probe_closes_it() {
    let _guard = faults::serial_guard();
    faults::reset();
    let cooldown = Duration::from_millis(100);
    let config = ServeConfig {
        metrics: Metrics::new(true),
        // No retries: each armed fail point fails one whole request, so
        // the breaker sees exactly the failures we inject.
        retry: RetryPolicy::none(),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown,
        },
        drain_grace: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let (addr, drain, join) = start(config);
    let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");
    let query = Request::Score {
        items: vec![0, 1],
        shard: None,
    };

    // Two injected failures reach the threshold…
    for round in 0..2 {
        faults::arm("serve/request-panic", 1);
        match c.request(&query).expect("io ok") {
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Internal, "round {round}")
            }
            other => panic!("round {round}: unexpected {other:?}"),
        }
    }

    // …so the circuit is open: requests are rejected without computing.
    match c.request(&query).expect("io ok") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Unavailable);
            assert!(message.contains("circuit"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // After the cooldown the breaker half-opens; the probe request runs
    // for real (nothing armed now), succeeds, and closes the circuit.
    thread::sleep(cooldown + Duration::from_millis(50));
    match c.request(&query).expect("io ok") {
        Response::Cover { covered, .. } => assert!(covered, "probe is served"),
        other => panic!("probe rejected: {other:?}"),
    }
    match c.request(&query).expect("io ok") {
        Response::Cover { .. } => {}
        other => panic!("circuit should be closed again: {other:?}"),
    }

    drain.drain();
    let report = join.join().expect("server thread");
    assert!(report.counter("serve/failures").unwrap_or(0) >= 2);
    assert!(
        report.counter("serve/breaker_rejected").unwrap_or(0) >= 1,
        "open-circuit rejection is visible in metrics"
    );
    faults::reset();
}
