//! Deterministic loopback load generator for benchmarking `oct-serve`.
//!
//! Drives a running daemon over real TCP connections — the same path a
//! production client takes, including protocol encode/decode, kernel
//! loopback, and the admission queue — so benchmark latencies include
//! everything a client would actually observe.
//!
//! Determinism contract: the *workload* (which items each request queries,
//! in what order, over how many connections) is a pure function of
//! [`LoadGenConfig`], derived from a splitmix64 stream seeded per
//! connection. Only the measured timings vary between runs.

use std::io;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::protocol::{Request, Response};

/// Workload shape for one load-generation burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Concurrent persistent connections (one thread each).
    pub connections: usize,
    /// Requests issued sequentially on each connection.
    pub requests_per_connection: usize,
    /// Item-id universe: requests draw ids from `0..num_items`.
    pub num_items: u32,
    /// Item ids per `SCORE` request (at least 1).
    pub items_per_request: usize,
    /// Base seed; connection `c` uses stream `seed + c`.
    pub seed: u64,
    /// Connect/read timeout per request.
    pub timeout: Duration,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            connections: 4,
            requests_per_connection: 50,
            num_items: 1000,
            items_per_request: 5,
            seed: 0x0c77_bea6,
            timeout: Duration::from_secs(10),
        }
    }
}

/// What one burst observed, client-side.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadGenOutcome {
    /// Per-request wall-clock latencies in seconds, grouped by connection
    /// in connection order (stable layout; values are the only
    /// non-deterministic part).
    pub latencies_s: Vec<f64>,
    /// Requests that got a successful `COVER` answer.
    pub ok: usize,
    /// Requests shed with a typed `OVERLOADED` response.
    pub shed: usize,
    /// Requests answered with a protocol `ERR`.
    pub errors: usize,
    /// Requests that failed at the transport level (reset, timeout).
    pub transport_errors: usize,
    /// Wall-clock seconds for the whole burst (all connections).
    pub elapsed_s: f64,
}

impl LoadGenOutcome {
    /// Total requests that received *any* answer.
    pub fn answered(&self) -> usize {
        self.ok + self.shed + self.errors
    }

    /// Completed requests per second over the whole burst.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.answered() as f64 / self.elapsed_s
    }

    /// Client-observed latency quantile in seconds (`0.0` when empty).
    pub fn latency_quantile_s(&self, q: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank.min(sorted.len()) - 1]
    }
}

/// splitmix64 — tiny, seedable, dependency-free PRNG. Good enough to spread
/// request item-sets over the id universe deterministically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic item set for request `r` on connection `c`.
///
/// Public so tests (and the bench harness) can assert the workload is a
/// pure function of the config.
pub fn request_items(config: &LoadGenConfig, connection: usize, request: usize) -> Vec<u32> {
    let mut state = config
        .seed
        .wrapping_add(connection as u64)
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(request as u64);
    let universe = config.num_items.max(1);
    (0..config.items_per_request.max(1))
        .map(|_| (splitmix64(&mut state) % u64::from(universe)) as u32)
        .collect()
}

/// Runs one burst against `addr` and reports client-side observations.
///
/// Each connection runs on its own thread with a persistent [`Client`],
/// issuing its requests back-to-back. Transport-level failures are counted,
/// not fatal — a shed or reset mid-burst is data, not an error. `Err` is
/// returned only when a connection cannot be established at all.
pub fn run(addr: SocketAddr, config: &LoadGenConfig) -> io::Result<LoadGenOutcome> {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(config.connections.max(1));
    for connection in 0..config.connections.max(1) {
        let config = *config;
        handles.push(thread::spawn(move || {
            run_connection(addr, &config, connection)
        }));
    }
    let mut outcome = LoadGenOutcome::default();
    let mut connect_err = None;
    for handle in handles {
        match handle.join().expect("loadgen connection thread panicked") {
            Ok(conn) => {
                outcome.latencies_s.extend(conn.latencies_s);
                outcome.ok += conn.ok;
                outcome.shed += conn.shed;
                outcome.errors += conn.errors;
                outcome.transport_errors += conn.transport_errors;
            }
            Err(e) => connect_err = Some(e),
        }
    }
    if let Some(e) = connect_err {
        if outcome.answered() == 0 {
            return Err(e);
        }
    }
    outcome.elapsed_s = started.elapsed().as_secs_f64();
    Ok(outcome)
}

fn run_connection(
    addr: SocketAddr,
    config: &LoadGenConfig,
    connection: usize,
) -> io::Result<LoadGenOutcome> {
    let mut client = Client::connect(addr, config.timeout)?;
    let mut outcome = LoadGenOutcome::default();
    for request in 0..config.requests_per_connection {
        let items = request_items(config, connection, request);
        let started = Instant::now();
        match client.request(&Request::Score { items }) {
            Ok(resp) => {
                outcome.latencies_s.push(started.elapsed().as_secs_f64());
                match resp {
                    Response::Overloaded { .. } => outcome.shed += 1,
                    Response::Error { .. } => outcome.errors += 1,
                    _ => outcome.ok += 1,
                }
            }
            Err(_) => {
                outcome.transport_errors += 1;
                // The connection may be dead; try to re-establish so the
                // rest of the burst still runs. Give up on repeat failure.
                match Client::connect(addr, config.timeout) {
                    Ok(fresh) => client = fresh,
                    Err(_) => break,
                }
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_in_config() {
        let config = LoadGenConfig::default();
        let a = request_items(&config, 2, 7);
        let b = request_items(&config, 2, 7);
        assert_eq!(a, b, "same (config, connection, request) → same items");
        assert_eq!(a.len(), config.items_per_request);
        assert!(a.iter().all(|&id| id < config.num_items));
        // Different coordinates give different sets (statistically certain
        // for this seed — pinned here so a regression is loud).
        assert_ne!(request_items(&config, 3, 7), a);
        assert_ne!(request_items(&config, 2, 8), a);
    }

    #[test]
    fn workload_handles_degenerate_universe() {
        let config = LoadGenConfig {
            num_items: 0,
            items_per_request: 0,
            ..LoadGenConfig::default()
        };
        let items = request_items(&config, 0, 0);
        assert_eq!(items, vec![0], "clamped to 1 item from a 1-id universe");
    }

    #[test]
    fn outcome_quantiles_and_throughput() {
        let outcome = LoadGenOutcome {
            latencies_s: vec![0.004, 0.001, 0.002, 0.003],
            ok: 4,
            elapsed_s: 2.0,
            ..LoadGenOutcome::default()
        };
        assert_eq!(outcome.answered(), 4);
        assert_eq!(outcome.throughput_rps(), 2.0);
        assert_eq!(outcome.latency_quantile_s(0.5), 0.002);
        assert_eq!(outcome.latency_quantile_s(1.0), 0.004);
        let empty = LoadGenOutcome::default();
        assert_eq!(empty.latency_quantile_s(0.5), 0.0);
        assert_eq!(empty.throughput_rps(), 0.0);
    }
}
