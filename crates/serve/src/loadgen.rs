//! Deterministic loopback load generator for benchmarking `oct-serve`.
//!
//! Drives a running daemon over real TCP connections — the same path a
//! production client takes, including protocol encode/decode, kernel
//! loopback, and the admission queue — so benchmark latencies include
//! everything a client would actually observe.
//!
//! Determinism contract: the *workload* (which items each request queries,
//! in what order, over how many connections, and — in open-loop mode — the
//! scheduled send times) is a pure function of [`LoadGenConfig`], derived
//! from a splitmix64 stream seeded per connection. Only the measured
//! timings vary between runs.
//!
//! Two arrival disciplines:
//!
//! - **Closed loop** (default): each connection issues its next request as
//!   soon as the previous one answers. Simple, but a slow server slows the
//!   arrival rate with it, hiding tail latency (coordinated omission).
//! - **Open loop** ([`Arrival::Open`]): requests fire on a seeded Poisson
//!   schedule regardless of how the server is doing, and each latency is
//!   measured from its *scheduled* send time — so queueing delay behind a
//!   straggler is charged to the straggler, the honest way to measure tail
//!   latency under load.
//!
//! Key skew: [`KeyDist::Zipf`] draws item ids from a Zipf distribution
//! (id 0 hottest) instead of uniformly, modelling real catalog traffic
//! where a few hot items dominate.

use std::io;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::protocol::{Request, Response};

/// Arrival discipline for a burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arrival {
    /// Back-to-back: the next request fires when the previous one answers.
    #[default]
    Closed,
    /// Seeded Poisson arrivals at a fixed aggregate rate, split evenly
    /// across connections; latencies are measured from the scheduled send
    /// time (queueing delay counts against the server).
    Open {
        /// Target aggregate request rate, requests/second (clamped ≥ 1).
        rps: u32,
    },
}

/// Item-id distribution for generated requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyDist {
    /// Every id in `0..num_items` equally likely.
    #[default]
    Uniform,
    /// Zipf-distributed ids: id `k` drawn with weight `1/(k+1)^s`, so id 0
    /// is the hottest key. The exponent is carried in milli-units
    /// (`1000` ⇒ s = 1.0) to keep the config `Eq`-comparable.
    Zipf {
        /// Zipf exponent × 1000.
        exponent_milli: u32,
    },
}

/// Workload shape for one load-generation burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Concurrent persistent connections (one thread each).
    pub connections: usize,
    /// Requests issued sequentially on each connection.
    pub requests_per_connection: usize,
    /// Item-id universe: requests draw ids from `0..num_items`.
    pub num_items: u32,
    /// Item ids per `SCORE` request (at least 1).
    pub items_per_request: usize,
    /// Base seed; connection `c` uses stream `seed + c`.
    pub seed: u64,
    /// Connect/read timeout per request.
    pub timeout: Duration,
    /// Arrival discipline (closed loop by default).
    pub arrival: Arrival,
    /// Item-id distribution (uniform by default).
    pub key_dist: KeyDist,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            connections: 4,
            requests_per_connection: 50,
            num_items: 1000,
            items_per_request: 5,
            seed: 0x0c77_bea6,
            timeout: Duration::from_secs(10),
            arrival: Arrival::Closed,
            key_dist: KeyDist::Uniform,
        }
    }
}

/// What one burst observed, client-side.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadGenOutcome {
    /// Per-request wall-clock latencies in seconds, grouped by connection
    /// in connection order (stable layout; values are the only
    /// non-deterministic part).
    pub latencies_s: Vec<f64>,
    /// Requests that got a successful `COVER` answer.
    pub ok: usize,
    /// Requests shed with a typed `OVERLOADED` response.
    pub shed: usize,
    /// Requests answered with a protocol `ERR`.
    pub errors: usize,
    /// Requests that failed at the transport level (reset, timeout).
    pub transport_errors: usize,
    /// Wall-clock seconds for the whole burst (all connections).
    pub elapsed_s: f64,
}

impl LoadGenOutcome {
    /// Total requests that received *any* answer.
    pub fn answered(&self) -> usize {
        self.ok + self.shed + self.errors
    }

    /// Completed requests per second over the whole burst.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.answered() as f64 / self.elapsed_s
    }

    /// Client-observed latency quantile in seconds (`0.0` when empty).
    pub fn latency_quantile_s(&self, q: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank.min(sorted.len()) - 1]
    }
}

/// splitmix64 — tiny, seedable, dependency-free PRNG. Good enough to spread
/// request item-sets over the id universe deterministically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Precomputed key-sampling state for one burst (`O(num_items)` to build,
/// `O(log num_items)` per Zipf draw, `O(1)` uniform).
#[derive(Debug, Clone)]
pub struct KeyTable {
    universe: u32,
    /// Cumulative Zipf weights over `0..universe`; empty in uniform mode.
    cdf: Vec<f64>,
}

impl KeyTable {
    /// Builds the sampling table for `config`'s universe and distribution.
    pub fn new(config: &LoadGenConfig) -> Self {
        let universe = config.num_items.max(1);
        let cdf = match config.key_dist {
            KeyDist::Uniform => Vec::new(),
            KeyDist::Zipf { exponent_milli } => {
                let s = f64::from(exponent_milli) / 1000.0;
                let mut total = 0.0;
                (0..universe)
                    .map(|k| {
                        total += (f64::from(k) + 1.0).powf(-s);
                        total
                    })
                    .collect()
            }
        };
        Self { universe, cdf }
    }

    /// Draws one item id from the table using the caller's PRNG state.
    fn sample(&self, state: &mut u64) -> u32 {
        let raw = splitmix64(state);
        if self.cdf.is_empty() {
            return (raw % u64::from(self.universe)) as u32;
        }
        let total = *self.cdf.last().expect("non-empty cdf");
        // 53-bit mantissa draw in [0, 1), scaled to the cumulative mass.
        let u = (raw >> 11) as f64 / (1u64 << 53) as f64 * total;
        match self
            .cdf
            .binary_search_by(|w| w.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(idx) | Err(idx) => (idx as u32).min(self.universe - 1),
        }
    }
}

/// The deterministic item set for request `r` on connection `c`.
///
/// Public so tests (and the bench harness) can assert the workload is a
/// pure function of the config. Hot loops should build one [`KeyTable`]
/// and call [`request_items_with`]; this convenience wrapper rebuilds the
/// table per call.
pub fn request_items(config: &LoadGenConfig, connection: usize, request: usize) -> Vec<u32> {
    request_items_with(&KeyTable::new(config), config, connection, request)
}

/// [`request_items`] against a prebuilt [`KeyTable`] (bit-identical).
pub fn request_items_with(
    table: &KeyTable,
    config: &LoadGenConfig,
    connection: usize,
    request: usize,
) -> Vec<u32> {
    let mut state = config
        .seed
        .wrapping_add(connection as u64)
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(request as u64);
    (0..config.items_per_request.max(1))
        .map(|_| table.sample(&mut state))
        .collect()
}

/// The open-loop send schedule for connection `c`: cumulative offsets from
/// burst start, one per request, drawn from a seeded exponential
/// inter-arrival stream (Poisson process at the connection's share of the
/// aggregate rate). `None` in closed-loop mode. A pure function of the
/// config, like the rest of the workload.
pub fn arrival_schedule(config: &LoadGenConfig, connection: usize) -> Option<Vec<Duration>> {
    let Arrival::Open { rps } = config.arrival else {
        return None;
    };
    let lambda = f64::from(rps.max(1)) / config.connections.max(1) as f64;
    let mut state = config
        .seed
        .wrapping_mul(0xa076_1d64_78bd_642f)
        .wrapping_add(connection as u64);
    let mut t = 0.0f64;
    Some(
        (0..config.requests_per_connection)
            .map(|_| {
                let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                // Inverse-CDF exponential; 1 - u is in (0, 1], so ln is finite.
                t += -(1.0 - u).ln() / lambda;
                Duration::from_secs_f64(t)
            })
            .collect(),
    )
}

/// Runs one burst against `addr` and reports client-side observations.
///
/// Each connection runs on its own thread with a persistent [`Client`],
/// issuing its requests back-to-back. Transport-level failures are counted,
/// not fatal — a shed or reset mid-burst is data, not an error. `Err` is
/// returned only when a connection cannot be established at all.
pub fn run(addr: SocketAddr, config: &LoadGenConfig) -> io::Result<LoadGenOutcome> {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(config.connections.max(1));
    for connection in 0..config.connections.max(1) {
        let config = *config;
        handles.push(thread::spawn(move || {
            run_connection(addr, &config, connection)
        }));
    }
    let mut outcome = LoadGenOutcome::default();
    let mut connect_err = None;
    for handle in handles {
        match handle.join().expect("loadgen connection thread panicked") {
            Ok(conn) => {
                outcome.latencies_s.extend(conn.latencies_s);
                outcome.ok += conn.ok;
                outcome.shed += conn.shed;
                outcome.errors += conn.errors;
                outcome.transport_errors += conn.transport_errors;
            }
            Err(e) => connect_err = Some(e),
        }
    }
    if let Some(e) = connect_err {
        if outcome.answered() == 0 {
            return Err(e);
        }
    }
    outcome.elapsed_s = started.elapsed().as_secs_f64();
    Ok(outcome)
}

fn run_connection(
    addr: SocketAddr,
    config: &LoadGenConfig,
    connection: usize,
) -> io::Result<LoadGenOutcome> {
    let mut client = Client::connect(addr, config.timeout)?;
    let table = KeyTable::new(config);
    let schedule = arrival_schedule(config, connection);
    let burst_start = Instant::now();
    let mut outcome = LoadGenOutcome::default();
    for request in 0..config.requests_per_connection {
        let items = request_items_with(&table, config, connection, request);
        // Open loop: wait out the scheduled send time, then measure from
        // the *schedule*, not the actual send — time spent stuck behind a
        // slow previous answer is server-induced queueing delay and must
        // show up in the tail, not vanish (coordinated omission).
        let started = match &schedule {
            Some(offsets) => {
                let scheduled = burst_start + offsets[request];
                let now = Instant::now();
                if scheduled > now {
                    thread::sleep(scheduled - now);
                }
                scheduled
            }
            None => Instant::now(),
        };
        match client.request(&Request::Score { items, shard: None }) {
            Ok(resp) => {
                outcome.latencies_s.push(started.elapsed().as_secs_f64());
                match resp {
                    Response::Overloaded { .. } => outcome.shed += 1,
                    Response::Error { .. } => outcome.errors += 1,
                    _ => outcome.ok += 1,
                }
            }
            Err(_) => {
                outcome.transport_errors += 1;
                // The connection may be dead; try to re-establish so the
                // rest of the burst still runs. Give up on repeat failure.
                match Client::connect(addr, config.timeout) {
                    Ok(fresh) => client = fresh,
                    Err(_) => break,
                }
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_in_config() {
        let config = LoadGenConfig::default();
        let a = request_items(&config, 2, 7);
        let b = request_items(&config, 2, 7);
        assert_eq!(a, b, "same (config, connection, request) → same items");
        assert_eq!(a.len(), config.items_per_request);
        assert!(a.iter().all(|&id| id < config.num_items));
        // Different coordinates give different sets (statistically certain
        // for this seed — pinned here so a regression is loud).
        assert_ne!(request_items(&config, 3, 7), a);
        assert_ne!(request_items(&config, 2, 8), a);
    }

    #[test]
    fn workload_handles_degenerate_universe() {
        let config = LoadGenConfig {
            num_items: 0,
            items_per_request: 0,
            ..LoadGenConfig::default()
        };
        let items = request_items(&config, 0, 0);
        assert_eq!(items, vec![0], "clamped to 1 item from a 1-id universe");
    }

    #[test]
    fn uniform_workload_matches_the_legacy_stream() {
        // The uniform path must stay bit-identical to the original
        // modulo-draw implementation so existing BENCH baselines remain
        // comparable.
        let config = LoadGenConfig::default();
        let mut state = config
            .seed
            .wrapping_add(2u64)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(7u64);
        let expected: Vec<u32> = (0..config.items_per_request)
            .map(|_| (splitmix64(&mut state) % u64::from(config.num_items)) as u32)
            .collect();
        assert_eq!(request_items(&config, 2, 7), expected);
    }

    #[test]
    fn zipf_skews_towards_low_ids() {
        let config = LoadGenConfig {
            key_dist: KeyDist::Zipf {
                exponent_milli: 1200,
            },
            num_items: 1000,
            items_per_request: 4,
            ..LoadGenConfig::default()
        };
        let table = KeyTable::new(&config);
        let mut counts = vec![0u32; config.num_items as usize];
        for request in 0..2000 {
            for id in request_items_with(&table, &config, 0, request) {
                assert!(id < config.num_items);
                counts[id as usize] += 1;
            }
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[990..].iter().sum();
        assert!(
            head > 20 * tail.max(1),
            "zipf head must dominate: head={head} tail={tail}"
        );
        // Still deterministic, and identical via the convenience wrapper.
        assert_eq!(
            request_items_with(&table, &config, 3, 9),
            request_items(&config, 3, 9)
        );
    }

    #[test]
    fn open_loop_schedule_is_deterministic_and_monotone() {
        let config = LoadGenConfig {
            arrival: Arrival::Open { rps: 200 },
            requests_per_connection: 64,
            ..LoadGenConfig::default()
        };
        let a = arrival_schedule(&config, 1).expect("open mode has a schedule");
        let b = arrival_schedule(&config, 1).expect("open mode has a schedule");
        assert_eq!(a, b, "schedule is a pure function of the config");
        assert_eq!(a.len(), config.requests_per_connection);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert_ne!(
            arrival_schedule(&config, 2).expect("schedule"),
            a,
            "connections get decorrelated streams"
        );
        // Mean inter-arrival ≈ connections/rps = 20ms; allow wide slack.
        let mean = a.last().expect("nonempty").as_secs_f64() / a.len() as f64;
        assert!((0.005..0.08).contains(&mean), "mean inter-arrival {mean}");
    }

    #[test]
    fn closed_loop_has_no_schedule() {
        assert_eq!(arrival_schedule(&LoadGenConfig::default(), 0), None);
        assert_eq!(LoadGenConfig::default().arrival, Arrival::Closed);
        assert_eq!(LoadGenConfig::default().key_dist, KeyDist::Uniform);
    }

    #[test]
    fn outcome_quantiles_and_throughput() {
        let outcome = LoadGenOutcome {
            latencies_s: vec![0.004, 0.001, 0.002, 0.003],
            ok: 4,
            elapsed_s: 2.0,
            ..LoadGenOutcome::default()
        };
        assert_eq!(outcome.answered(), 4);
        assert_eq!(outcome.throughput_rps(), 2.0);
        assert_eq!(outcome.latency_quantile_s(0.5), 0.002);
        assert_eq!(outcome.latency_quantile_s(1.0), 0.004);
        let empty = LoadGenOutcome::default();
        assert_eq!(empty.latency_quantile_s(0.5), 0.0);
        assert_eq!(empty.throughput_rps(), 0.0);
    }
}
