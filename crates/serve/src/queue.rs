//! Bounded admission queue with explicit rejection.
//!
//! The serving daemon's first line of defense: every connection that wants
//! work done must win a slot here *before* any work happens. When the queue
//! is full the caller gets [`Push::Full`] back immediately — the daemon then
//! sends a typed `OVERLOADED` response and moves on. Nothing ever blocks on
//! admission and nothing buffers unboundedly; memory use is capped by
//! construction, and under overload clients get a fast, honest signal
//! instead of a growing latency cliff.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot` shim
//! intentionally omits `Condvar`, and the pop side needs to sleep.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Outcome of a non-blocking push.
#[derive(Debug, PartialEq, Eq)]
pub enum Push<T> {
    /// The item was admitted.
    Ok,
    /// The queue is at capacity; the item comes back to the caller along
    /// with the depth observed at rejection (for the typed shed response).
    Full(T, usize),
    /// The queue is closed (drain in progress); the item comes back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue that rejects instead of blocking on push.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; for metrics and shed responses).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// `true` when no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to admit `item` without blocking.
    pub fn try_push(&self, item: T) -> Push<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Push::Closed(item);
        }
        if state.items.len() >= self.capacity {
            let depth = state.items.len();
            return Push::Full(item, depth);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Push::Ok
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; returns `None` only in the latter case, so workers exit
    /// exactly when no admitted work remains.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Like [`pop`](Self::pop) but gives up after `timeout`, returning
    /// `None` without closing. Lets workers interleave waiting with
    /// shutdown-flag checks.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let (next, waited) = self
                .ready
                .wait_timeout(state, timeout)
                .expect("queue poisoned");
            state = next;
            if waited.timed_out() {
                return state.items.pop_front();
            }
        }
    }

    /// Closes the queue: future pushes are rejected, waiting poppers drain
    /// the remaining items and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// `true` once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rejects_at_capacity_with_observed_depth() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Push::Ok);
        assert_eq!(q.try_push(2), Push::Ok);
        assert_eq!(q.try_push(3), Push::Full(3, 2), "item returns to caller");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Push::Ok, "slot freed by pop");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Push::Ok);
        assert_eq!(q.try_push(2), Push::Full(2, 1));
    }

    #[test]
    fn close_drains_then_stops_poppers() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.try_push(1), Push::Ok);
        assert_eq!(q.try_push(2), Push::Ok);
        q.close();
        assert_eq!(q.try_push(3), Push::Closed(3), "no admission after close");
        assert_eq!(q.pop(), Some(1), "admitted work still drains");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "then poppers release");
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        // Give the poppers a moment to block, then close.
        thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().expect("no panic"), None);
        }
    }

    #[test]
    fn pop_timeout_returns_without_closing() {
        let q = BoundedQueue::<u32>::new(4);
        let start = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert!(!q.is_closed());
        assert_eq!(q.try_push(7), Push::Ok, "queue still live");
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(7));
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_admitted_item() {
        let q = Arc::new(BoundedQueue::<u32>::new(16));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut admitted = 0u32;
        for i in 0..10_000u32 {
            loop {
                match q.try_push(i) {
                    Push::Ok => {
                        admitted += 1;
                        break;
                    }
                    Push::Full(_, _) => thread::yield_now(),
                    Push::Closed(_) => unreachable!("queue not closed"),
                }
            }
        }
        q.close();
        let total: usize = consumers
            .into_iter()
            .map(|h| h.join().expect("no panic").len())
            .sum();
        assert_eq!(
            total as u32, admitted,
            "no admitted item lost or duplicated"
        );
    }
}
