//! Minimal SIGTERM/SIGINT → shutdown-flag plumbing.
//!
//! `std` exposes no signal API and this workspace vendors no `libc`, so the
//! two calls we need (`signal(2)` registration) go through a direct FFI
//! declaration. The handler does the only thing that is async-signal-safe
//! here: a relaxed store to a static `AtomicBool` the accept loop polls.
//! On non-Unix targets signal registration is a no-op and shutdown comes
//! from the `SHUTDOWN` protocol verb (or process kill) instead.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once a termination signal (or [`request_shutdown`]) has fired.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Raises the shutdown flag from ordinary code (the `SHUTDOWN` verb, tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clears the flag — for tests that start multiple servers in one process.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`. Registering via the C runtime keeps this
        // dependency-free; `sigaction` ergonomics are not needed for a
        // single boolean flag.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    /// Routes SIGTERM and SIGINT to the shutdown flag.
    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// Installs the termination handlers (no-op off Unix).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the flag is a process-global static and
    // `cargo test` runs tests concurrently in one process.
    #[test]
    fn flag_round_trips_and_signals_set_it() {
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
        assert!(!shutdown_requested());

        #[cfg(unix)]
        {
            extern "C" {
                fn kill(pid: i32, sig: i32) -> i32;
                fn getpid() -> i32;
            }
            install_handlers();
            unsafe {
                kill(getpid(), 15);
            }
            // Delivery is synchronous for a self-signal on the calling
            // thread, but allow a beat for scheduler variance.
            for _ in 0..100 {
                if shutdown_requested() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert!(shutdown_requested());
            reset_for_tests();
        }
    }
}
