//! The serving daemon: accept loop, worker pool, and the robustness
//! machinery wrapped around every request.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ─▶ admission (BoundedQueue.try_push)
//!              │ Full ─▶ OVERLOADED queue=N, close   (typed shed, no work done)
//!              ▼
//!           worker pops connection
//!              │ per request line:
//!              │   snapshot = TreeHandle::load()     (hot-swap safe)
//!              │   budget   = deadline ∧ drain token (slow ⇒ degraded cover)
//!              │   breaker.try_acquire()? ── no ─▶ ERR unavailable
//!              │   retry { run_isolated { execute } }  (panic ⇒ backoff ⇒ retry)
//!              ▼
//!           response line; latency histogram; breaker bookkeeping
//! ```
//!
//! # Drain
//!
//! SIGTERM / SIGINT / the `SHUTDOWN` verb raise a flag the accept loop and
//! workers poll. Drain then proceeds: stop accepting → close the admission
//! queue (future pushes rejected, queued connections still served) →
//! workers finish the request in hand and close their connections → after
//! a grace period any stragglers are cancelled through the shared drain
//! [`CancelToken`] (their budgets expire, so they complete degraded rather
//! than hang) → metrics are flushed as a [`PipelineReport`]. Exit is clean:
//! every admitted request gets *some* response.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use oct_core::{persist, Similarity};
use oct_obs::{Metrics, PipelineReport};
use oct_resilience::{faults, run_isolated, Budget, CancelToken};
use oct_resilience::{BreakerConfig, CircuitBreaker, RetryPolicy};

use crate::protocol::{ErrorCode, Request, Response};
use crate::queue::{BoundedQueue, Push};
use crate::signal;
use crate::swap::{ServingTree, TreeHandle};

/// How long a worker blocks on the queue before re-checking shutdown.
const POP_INTERVAL: Duration = Duration::from_millis(25);
/// Socket read timeout — the cadence at which idle connections notice drain.
const READ_INTERVAL: Duration = Duration::from_millis(50);
/// Accept-loop poll interval when no connection is pending.
const ACCEPT_INTERVAL: Duration = Duration::from_millis(5);
/// Hard cap on one request line (DoS guard).
const MAX_LINE: usize = 1 << 20;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads — the in-flight concurrency limit.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond `workers + capacity`
    /// are shed with a typed `OVERLOADED` response.
    pub queue_capacity: usize,
    /// Per-request deadline; `Some(0)` serves everything fully degraded,
    /// `None` means unlimited (the drain token still bounds requests).
    pub deadline_ms: Option<u64>,
    /// Similarity variant queries are scored under.
    pub similarity: Similarity,
    /// Retry policy for transient request failures (contained panics).
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// How long drain waits for in-flight work before cancelling it.
    pub drain_grace: Duration,
    /// Slowloris guard: cap on the *cumulative* time a connection may
    /// take to deliver its next complete request line. The per-read
    /// timeout resets on every dribbled byte; this deadline does not, so
    /// a client feeding one byte per poll is disconnected (silently — an
    /// unsolicited error line would desync pipelined peers) once the cap
    /// elapses.
    pub idle_timeout: Duration,
    /// Byzantine-client guard: requests served per connection before a
    /// courteous close (the response in hand is always written first).
    /// `0` means unlimited.
    pub max_requests: usize,
    /// Metrics sink (pass [`Metrics::disabled`] to opt out).
    pub metrics: Metrics,
    /// Where to write the final [`PipelineReport`] JSON on exit.
    pub metrics_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            deadline_ms: Some(250),
            similarity: Similarity::jaccard_cutoff(0.5),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            drain_grace: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            max_requests: 10_000,
            metrics: Metrics::disabled(),
            metrics_out: None,
        }
    }
}

/// Everything workers and the accept loop share.
struct Shared {
    config: ServeConfig,
    trees: TreeHandle,
    queue: BoundedQueue<TcpStream>,
    breaker: CircuitBreaker,
    metrics: Metrics,
    /// Per-server drain flag (the process-global signal flag is OR'd in so
    /// several test servers in one process don't drain each other).
    shutdown: AtomicBool,
    /// Cancelled at the end of the drain grace period; every request
    /// budget carries it.
    drain_token: CancelToken,
    /// Connections currently being served by workers.
    in_flight: AtomicUsize,
    /// Seed source for deterministic-but-decorrelated retry jitter.
    next_seed: AtomicU64,
    /// Sticky: latched the first time any answer is served degraded, and
    /// reported in `STATS` so health probes can spot a limping replica.
    served_degraded: AtomicBool,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested()
    }

    fn request_drain(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks until drain.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Lets tests (and the CLI's signal wiring) trigger drain without a socket.
#[derive(Clone)]
pub struct DrainHandle {
    shared: Arc<Shared>,
}

impl DrainHandle {
    /// Begins graceful drain, as if SIGTERM had arrived.
    pub fn drain(&self) {
        self.shared.request_drain();
    }
}

impl Server {
    /// Binds the listener and prepares the shared state. The initial tree
    /// snapshot must already be built (epoch 0 by convention).
    pub fn bind(config: ServeConfig, initial: ServingTree) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let similarity = config.similarity;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            breaker: CircuitBreaker::new(config.breaker.clone()),
            metrics: config.metrics.clone(),
            trees: TreeHandle::new(initial, similarity),
            shutdown: AtomicBool::new(false),
            drain_token: CancelToken::new(),
            in_flight: AtomicUsize::new(0),
            next_seed: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            served_degraded: AtomicBool::new(false),
            config,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can trigger graceful drain from another thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs accept → serve → drain to completion and returns the final
    /// metrics report (already written to `metrics_out` if configured).
    pub fn run(self) -> io::Result<PipelineReport> {
        let Self { listener, shared } = self;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("oct-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        // Accept until drain is requested. Shedding happens here, before
        // any work: a connection that cannot be queued gets the typed
        // OVERLOADED response and is closed immediately.
        while !shared.draining() {
            match listener.accept() {
                Ok((conn, _peer)) => {
                    shared.metrics.incr("serve/accepted");
                    // Responses are small multi-part writes; leaving Nagle
                    // on stacks its delay onto the client's delayed ACK and
                    // inflates per-request latency by tens of milliseconds.
                    let _ = conn.set_nodelay(true);
                    admit(&shared, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            shared
                .metrics
                .gauge("serve/queue_depth", shared.queue.len() as f64);
        }

        // Drain: no new admissions; queued connections still get served.
        shared.queue.close();
        let grace_end = Instant::now() + shared.config.drain_grace;
        while (shared.in_flight.load(Ordering::Relaxed) > 0 || !shared.queue.is_empty())
            && Instant::now() < grace_end
        {
            thread::sleep(Duration::from_millis(5));
        }
        // Stragglers: expire every outstanding budget so requests finish
        // degraded instead of hanging past the grace period.
        shared.drain_token.cancel();
        for w in workers {
            let _ = w.join();
        }

        shared
            .metrics
            .gauge("serve/queue_depth", shared.queue.len() as f64);
        let report = shared.metrics.report();
        if let Some(path) = &shared.config.metrics_out {
            std::fs::write(path, report.to_json())?;
        }
        Ok(report)
    }
}

/// Admission control: queue the connection or shed it with a typed reply.
fn admit(shared: &Shared, conn: TcpStream) {
    match shared.queue.try_push(conn) {
        Push::Ok => {}
        Push::Full(mut conn, depth) => {
            shared.metrics.incr("serve/shed");
            let line = Response::Overloaded { queue_depth: depth }.encode();
            let _ = conn.set_nonblocking(false);
            let _ = writeln!(conn, "{line}");
        }
        Push::Closed(mut conn) => {
            let line = Response::Error {
                code: ErrorCode::Unavailable,
                message: "draining".to_owned(),
            }
            .encode();
            let _ = conn.set_nonblocking(false);
            let _ = writeln!(conn, "{line}");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop_timeout(POP_INTERVAL) {
            Some(conn) => {
                shared.in_flight.fetch_add(1, Ordering::Relaxed);
                let _ = serve_connection(shared, conn);
                shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            }
            None if shared.queue.is_closed() => return,
            None => {}
        }
    }
}

/// Serves request lines on one connection until EOF, a `SHUTDOWN`, drain,
/// or an I/O error. One malformed line yields `ERR bad-request`, not a
/// dropped connection.
fn serve_connection(shared: &Shared, mut conn: TcpStream) -> io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(READ_INTERVAL))?;
    let mut reader = LineReader::new();
    let mut served = 0usize;
    loop {
        // The deadline is per *complete line*, so a slowloris dribbling
        // bytes (which resets the socket read timeout every poll) still
        // runs out of road.
        let deadline = Instant::now() + shared.config.idle_timeout;
        let line = match reader.next_line_within(&mut conn, || shared.draining(), Some(deadline)) {
            Ok(NextLine::Line(line)) => line,
            Ok(NextLine::Closed) => return Ok(()), // EOF or drain while idle
            Ok(NextLine::TimedOut) => {
                shared.metrics.incr("serve/idle_closed");
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Ok(request) => {
                let started = Instant::now();
                shared.metrics.incr("serve/requests");
                let resp = handle_request(shared, request);
                shared.metrics.observe("serve/latency", started.elapsed());
                resp
            }
            Err(message) => Response::Error {
                code: ErrorCode::BadRequest,
                message,
            },
        };
        let done = matches!(response, Response::Draining);
        writeln!(conn, "{}", response.encode())?;
        // Drain closes busy connections too: the request in hand got its
        // response, but a client pipelining fast enough to never leave a
        // read-timeout gap must not pin this worker past drain.
        if done || shared.draining() {
            return Ok(());
        }
        served += 1;
        let cap = shared.config.max_requests;
        if cap > 0 && served >= cap {
            // Courteous close: the Nth response is already on the wire,
            // and a well-behaved client (the router's pool included)
            // treats the EOF as "reconnect", not as a failure.
            shared.metrics.incr("serve/conn_retired");
            return Ok(());
        }
    }
}

/// Dispatches one parsed request against the *current* tree snapshot.
fn handle_request(shared: &Shared, request: Request) -> Response {
    // Load once per request: a swap published mid-request never tears this
    // snapshot, and the next request on the same connection sees the new
    // epoch.
    let snapshot = shared.trees.load();
    match request {
        Request::Ping => Response::Pong {
            epoch: snapshot.epoch,
        },
        Request::Categorize { items, shard } => {
            count_scoped(shared, shard);
            cover(shared, &snapshot, &items, true)
        }
        Request::Score { items, shard } => {
            count_scoped(shared, shard);
            cover(shared, &snapshot, &items, false)
        }
        Request::NavigateTopK { k, items, ef } => {
            if k == 0 {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "top-k count must be positive".to_owned(),
                };
            }
            navigate_topk(shared, &snapshot, k, &items, ef)
        }
        Request::Navigate { cat } => match snapshot.live_children(cat) {
            Some(children) => Response::Nav { cat, children },
            None => Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("unknown or removed category {cat}"),
            },
        },
        Request::Stats => Response::Stats {
            epoch: snapshot.epoch,
            categories: snapshot.stats.categories,
            max_depth: snapshot.stats.max_depth,
            items: snapshot.index.num_items(),
            degraded: shared.served_degraded.load(Ordering::Relaxed),
        },
        Request::Swap { path } => swap_tree(shared, &path),
        Request::Shutdown => {
            shared.request_drain();
            Response::Draining
        }
    }
}

/// Attributes shard-scoped sub-queries (router fan-out) so per-shard load
/// shows up in the report; the scope tag does not change the computation.
fn count_scoped(shared: &Shared, shard: Option<u32>) {
    if let Some(shard) = shard {
        shared.metrics.incr(&format!("serve/shard/{shard}"));
    }
}

/// The guarded compute path: breaker → retry → isolated cover scan.
fn cover(shared: &Shared, snapshot: &ServingTree, items: &[u32], with_label: bool) -> Response {
    if !shared.breaker.try_acquire() {
        shared.metrics.incr("serve/breaker_rejected");
        return Response::Error {
            code: ErrorCode::Unavailable,
            message: format!("circuit {}", shared.breaker.state().name()),
        };
    }
    let budget = request_budget(shared);
    let seed = shared.next_seed.fetch_add(1, Ordering::Relaxed);
    let result = shared.config.retry.run(seed, &budget, |attempt| {
        if attempt > 1 {
            // Counted per attempt so *recovered* requests show up too.
            shared.metrics.incr("serve/retries");
        }
        run_isolated("serve request", || {
            if faults::fire("serve/request-panic") {
                panic!("injected serve fault (attempt {attempt})");
            }
            snapshot
                .index
                .best_cover(items, &shared.trees.similarity, &budget)
        })
    });
    match result {
        Ok(point) => {
            shared.breaker.record_success();
            if point.degraded {
                shared.metrics.incr("serve/degraded");
                shared.served_degraded.store(true, Ordering::Relaxed);
            }
            let label = if with_label {
                point
                    .best_category
                    .and_then(|cat| snapshot.tree.label(cat))
                    .map(str::to_owned)
            } else {
                None
            };
            Response::Cover {
                epoch: snapshot.epoch,
                cat: point.best_category,
                similarity: point.similarity,
                precision: point.precision,
                covered: point.covered,
                degraded: point.degraded,
                missing: Vec::new(),
                label,
            }
        }
        Err(outcome) => {
            shared.breaker.record_failure();
            shared.metrics.incr("serve/failures");
            Response::Error {
                code: ErrorCode::Internal,
                message: format!(
                    "request failed after {} attempt(s): {}",
                    outcome.attempts(),
                    outcome.into_error()
                ),
            }
        }
    }
}

/// Candidate pool floor for top-k NAVIGATE: reranking a few extra
/// candidates is cheap and buys recall headroom when k is small.
const TOPK_POOL_FLOOR: usize = 32;

/// The top-k NAVIGATE path: same breaker → retry → isolation contract as
/// [`cover`], but narrowing with the ANN index before the exact rerank.
fn navigate_topk(
    shared: &Shared,
    snapshot: &ServingTree,
    k: usize,
    items: &[u32],
    ef: Option<usize>,
) -> Response {
    if !shared.breaker.try_acquire() {
        shared.metrics.incr("serve/breaker_rejected");
        return Response::Error {
            code: ErrorCode::Unavailable,
            message: format!("circuit {}", shared.breaker.state().name()),
        };
    }
    let pool = k.max(TOPK_POOL_FLOOR);
    let ef = ef.unwrap_or(oct_core::vector::DEFAULT_EF_SEARCH).max(pool);
    let budget = request_budget(shared);
    let seed = shared.next_seed.fetch_add(1, Ordering::Relaxed);
    let result = shared.config.retry.run(seed, &budget, |attempt| {
        if attempt > 1 {
            shared.metrics.incr("serve/retries");
        }
        run_isolated("serve topk", || {
            if faults::fire("serve/request-panic") {
                panic!("injected serve fault (attempt {attempt})");
            }
            let candidates = snapshot.ann.candidates_for(items, pool, ef);
            snapshot
                .index
                .top_covers_among(items, &candidates, k, &shared.trees.similarity, &budget)
        })
    });
    match result {
        Ok((ranked, degraded)) => {
            shared.breaker.record_success();
            if degraded {
                shared.metrics.incr("serve/degraded");
                shared.served_degraded.store(true, Ordering::Relaxed);
            }
            Response::TopK {
                epoch: snapshot.epoch,
                k,
                ef,
                degraded,
                results: ranked.iter().map(|r| (r.cat, r.similarity)).collect(),
            }
        }
        Err(outcome) => {
            shared.breaker.record_failure();
            shared.metrics.incr("serve/failures");
            Response::Error {
                code: ErrorCode::Internal,
                message: format!(
                    "request failed after {} attempt(s): {}",
                    outcome.attempts(),
                    outcome.into_error()
                ),
            }
        }
    }
}

fn request_budget(shared: &Shared) -> Budget {
    let deadline = shared.config.deadline_ms.map(Duration::from_millis);
    Budget::with_deadline_and_token(deadline, shared.drain_token.clone())
}

/// Hot swap: load + decode + index a tree file off the request path, then
/// publish it atomically.
///
/// Every failure path — unreadable file, undecodable bytes, a panic while
/// indexing the decoded tree — leaves the serving state untouched: the
/// epoch does not advance, `serve/swaps` counts only *published* swaps
/// (failures land under `serve/swap_failed`), and the old tree keeps
/// serving.
fn swap_tree(shared: &Shared, path: &str) -> Response {
    let fail = |message: String| {
        shared.metrics.incr("serve/swap_failed");
        Response::Error {
            code: ErrorCode::BadRequest,
            message,
        }
    };
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let tree = match persist::decode_tree(bytes::Bytes::from(raw)) {
        Ok(tree) => tree,
        Err(e) => return fail(format!("cannot decode {path}: {e}")),
    };
    let num_items = shared.trees.load().index.num_items();
    // Building the point index walks the decoded tree; isolate it so a
    // pathological-but-decodable file cannot kill the worker or publish a
    // half-built snapshot.
    let next = match run_isolated("swap build", || {
        ServingTree::build(tree, num_items, 0, path)
    }) {
        Ok(next) => next,
        Err(e) => return fail(format!("cannot index {path}: {e}")),
    };
    let published = shared.trees.swap(next);
    shared.metrics.incr("serve/swaps");
    Response::Swapped {
        epoch: published.epoch,
        categories: published.stats.categories,
    }
}

/// Incremental line reader tolerant of read timeouts.
///
/// `BufReader::read_line` cannot be used across a timeout error — it may
/// have consumed a partial line into its private buffer. This reader owns
/// the buffer, so timeouts are a clean "no progress yet" and the partial
/// line survives for the next poll. Public so the shard router's front-end
/// shares the exact same framing (including the 1 MiB DoS cap).
pub struct LineReader {
    buf: Vec<u8>,
    chunk: [u8; 4096],
}

impl Default for LineReader {
    fn default() -> Self {
        Self::new()
    }
}

impl LineReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            chunk: [0; 4096],
        }
    }

    /// Reads until a full line, EOF (`None`), or `should_stop()` turning
    /// true while idle between timeouts.
    pub fn next_line(
        &mut self,
        conn: &mut TcpStream,
        should_stop: impl Fn() -> bool,
    ) -> io::Result<Option<String>> {
        match self.next_line_within(conn, should_stop, None)? {
            NextLine::Line(line) => Ok(Some(line)),
            NextLine::Closed | NextLine::TimedOut => Ok(None),
        }
    }

    /// Like [`next_line`](Self::next_line), but with a hard deadline on
    /// producing the next complete line. The deadline is checked between
    /// reads, so it caps *cumulative* wait — a slowloris dribbling one
    /// byte per socket-timeout window makes progress against the socket
    /// timeout but not against this deadline. A line already buffered is
    /// always returned, deadline or not.
    pub fn next_line_within(
        &mut self,
        conn: &mut TcpStream,
        should_stop: impl Fn() -> bool,
        deadline: Option<Instant>,
    ) -> io::Result<NextLine> {
        loop {
            if let Some(at) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=at).collect();
                return Ok(NextLine::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line too long",
                ));
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Ok(NextLine::TimedOut);
                }
            }
            match conn.read(&mut self.chunk) {
                Ok(0) => return Ok(NextLine::Closed),
                Ok(n) => self.buf.extend_from_slice(&self.chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if should_stop() {
                        return Ok(NextLine::Closed);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Outcome of one [`LineReader::next_line_within`] wait.
#[derive(Debug)]
pub enum NextLine {
    /// A complete request line (newline included, like `next_line`).
    Line(String),
    /// Clean EOF, or `should_stop` turned true while idle.
    Closed,
    /// The deadline elapsed before a complete line arrived.
    TimedOut,
}
