//! A small blocking client for the `oct-serve` line protocol.
//!
//! Used by the `octree query` subcommand, the smoke script, and the
//! integration tests. One [`Client`] holds one persistent connection;
//! [`one_shot`] is the connect-send-read-close convenience.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Request, Response};

/// A persistent connection to an `oct-serve` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects (with a connect/read timeout so a wedged daemon cannot
    /// hang the caller forever).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        // One request is several small writes (line, newline); without
        // TCP_NODELAY, Nagle holds the tail until the delayed ACK of the
        // head — tens of milliseconds of artificial latency per request.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
        })
    }

    /// Sends one request and reads its one-line response.
    ///
    /// Protocol-level failures (`OVERLOADED`, `ERR ...`) come back as
    /// `Ok(Response::...)` — they are answers, not transport errors. `Err`
    /// means the conversation itself broke (connection reset, timeout,
    /// unparseable line).
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.encode())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Connects, performs one request, and closes.
pub fn one_shot(addr: impl ToSocketAddrs, request: &Request) -> io::Result<Response> {
    let mut client = Client::connect(addr, Duration::from_secs(10))?;
    client.request(request)
}
