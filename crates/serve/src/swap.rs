//! Hot tree swap: an atomically replaceable handle to the serving tree.
//!
//! A rebuild (or an operator `SWAP` request) produces a complete new
//! [`ServingTree`] — tree, point index, and navigation stats built *off* the
//! request path — and publishes it in one pointer store. In-flight requests
//! keep the `Arc` snapshot they loaded at admission, so they finish against
//! a coherent tree; only requests admitted after the swap see the new epoch.
//! No request ever observes half of each.
//!
//! This is the classic `ArcSwap` pattern; with no such crate vendored, a
//! `parking_lot::RwLock<Arc<_>>` provides the same publish/load semantics
//! (loads take a short read lock to clone the `Arc`, swaps take the write
//! lock for one pointer store — never held across request work).

use std::sync::Arc;

use oct_core::navigation::{self, NavigationStats};
use oct_core::{CategoryTree, PointIndex, Similarity, VectorConfig, VectorIndex};
use parking_lot::RwLock;

/// One immutable snapshot of everything a request needs from the tree.
#[derive(Debug)]
pub struct ServingTree {
    /// The category tree.
    pub tree: CategoryTree,
    /// The point-query index built for it.
    pub index: PointIndex,
    /// The ANN index over category centroid embeddings (top-k NAVIGATE
    /// candidate generation). Built with the default deterministic seed, so
    /// every replica serving the same tree holds a bit-identical index.
    pub ann: VectorIndex,
    /// Navigation statistics (computed once at publish).
    pub stats: NavigationStats,
    /// Monotonic publish counter; responses carry it so clients (and the
    /// torn-tree test) can pin which snapshot answered.
    pub epoch: u64,
    /// Where the tree came from (path or "inline"), for logs.
    pub source: String,
}

impl ServingTree {
    /// Builds a snapshot from a decoded tree. `num_items` sizes the point
    /// index (items assigned beyond it extend it automatically).
    pub fn build(
        tree: CategoryTree,
        num_items: u32,
        epoch: u64,
        source: impl Into<String>,
    ) -> Self {
        let index = PointIndex::build(&tree, num_items);
        let ann = VectorIndex::for_tree(&tree, &VectorConfig::default());
        let stats = navigation::stats(&tree);
        Self {
            tree,
            index,
            ann,
            stats,
            epoch,
            source: source.into(),
        }
    }

    /// Live (non-removed) children of `cat`, or `None` for an unknown or
    /// removed category.
    pub fn live_children(&self, cat: oct_core::CatId) -> Option<Vec<oct_core::CatId>> {
        if (cat as usize) >= self.tree.len() || self.tree.is_removed(cat) {
            return None;
        }
        Some(
            self.tree
                .children(cat)
                .iter()
                .copied()
                .filter(|&c| !self.tree.is_removed(c))
                .collect(),
        )
    }
}

/// Shared, atomically swappable handle to the current [`ServingTree`].
pub struct TreeHandle {
    current: RwLock<Arc<ServingTree>>,
    /// Similarity variant requests are scored under (fixed at startup so
    /// every epoch answers under the same objective).
    pub similarity: Similarity,
}

impl TreeHandle {
    /// Wraps the initial snapshot.
    pub fn new(initial: ServingTree, similarity: Similarity) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
            similarity,
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone under a read lock);
    /// call once per request and use the returned snapshot throughout.
    pub fn load(&self) -> Arc<ServingTree> {
        Arc::clone(&self.current.read())
    }

    /// Atomically publishes `next` (its epoch is forced to `current + 1`)
    /// and returns the new snapshot.
    pub fn swap(&self, mut next: ServingTree) -> Arc<ServingTree> {
        let mut slot = self.current.write();
        next.epoch = slot.epoch + 1;
        let next = Arc::new(next);
        *slot = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oct_core::ROOT;

    fn small_tree() -> CategoryTree {
        let mut t = CategoryTree::new();
        let a = t.add_category(ROOT);
        let b = t.add_category(ROOT);
        t.assign_items(a, [0, 1, 2]);
        t.assign_items(b, [3, 4]);
        t
    }

    #[test]
    fn swap_bumps_epoch_and_old_snapshots_survive() {
        let handle = TreeHandle::new(
            ServingTree::build(small_tree(), 8, 0, "seed"),
            Similarity::jaccard_cutoff(0.5),
        );
        let before = handle.load();
        assert_eq!(before.epoch, 0);

        let published = handle.swap(ServingTree::build(CategoryTree::new(), 8, 999, "new"));
        assert_eq!(published.epoch, 1, "epoch is forced monotonic");
        assert_eq!(handle.load().epoch, 1);

        // The pre-swap snapshot is still fully usable — in-flight requests
        // holding it never see the new tree.
        assert_eq!(before.epoch, 0);
        assert!(before.index.len() > handle.load().index.len());
    }

    #[test]
    fn live_children_filters_removed_and_unknown() {
        let mut tree = small_tree();
        let removed = tree.children(ROOT)[1];
        tree.remove_category(removed);
        let snap = ServingTree::build(tree, 8, 0, "t");
        let kids = snap.live_children(ROOT).expect("root is live");
        assert!(!kids.contains(&removed));
        assert_eq!(snap.live_children(removed), None, "removed cat is a miss");
        assert_eq!(snap.live_children(10_000), None, "unknown cat is a miss");
    }
}
