//! # oct-serve — overload-resilient category-tree query serving
//!
//! The batch pipeline (`oct-cli build` / `score`) produces a category tree
//! once; this crate keeps one *running* — a daemon that loads a persisted
//! `.oct` tree and answers point queries (categorize, score, navigate)
//! over a line-delimited TCP protocol, built around the failure modes a
//! long-lived service actually meets:
//!
//! * **Admission control & load shedding** ([`queue`]) — a bounded queue
//!   in front of a fixed worker pool. At capacity, clients get a typed
//!   `OVERLOADED` response immediately; the daemon never buffers without
//!   bound and never makes admitted requests pay for un-admitted ones.
//! * **Deadlines** — every request runs under a
//!   [`Budget`](oct_resilience::Budget) cut from the server-wide deadline
//!   policy; slow scans degrade to a pessimistic partial cover
//!   (`degraded=1` on the wire) instead of blowing the latency budget.
//! * **Retries & circuit breaking** — transient failures (worker panics
//!   contained by [`run_isolated`](oct_resilience::run_isolated)) are
//!   retried with deterministic jittered exponential backoff
//!   ([`RetryPolicy`](oct_resilience::RetryPolicy)); persistent failure
//!   trips a [`CircuitBreaker`](oct_resilience::CircuitBreaker) that sheds
//!   the compute path until a half-open probe succeeds.
//! * **Graceful drain** ([`server`]) — SIGTERM/SIGINT/`SHUTDOWN` stop
//!   admission, let in-flight work finish (cancelling stragglers through a
//!   shared [`CancelToken`](oct_resilience::CancelToken) after a grace
//!   period), then flush metrics as a
//!   [`PipelineReport`](oct_obs::PipelineReport).
//! * **Hot tree swap** ([`swap`]) — a rebuild publishes a complete new
//!   snapshot (tree + point index + stats) through one atomic handle;
//!   in-flight requests keep the snapshot they started with, so no request
//!   ever sees a torn tree.
//!
//! ```no_run
//! use oct_serve::prelude::*;
//! use oct_core::{CategoryTree, Similarity};
//!
//! let tree = ServingTree::build(CategoryTree::new(), 100, 0, "inline");
//! let server = Server::bind(ServeConfig::default(), tree)?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let resp = oct_serve::client::one_shot(addr, &Request::Categorize {
//!     items: vec![1, 2, 3],
//!     shard: None,
//! })?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod swap;

pub use client::Client;
pub use loadgen::{Arrival, KeyDist, LoadGenConfig, LoadGenOutcome};
pub use protocol::{ErrorCode, Request, Response};
pub use queue::{BoundedQueue, Push};
pub use server::{DrainHandle, LineReader, NextLine, ServeConfig, Server};
pub use swap::{ServingTree, TreeHandle};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::client::{one_shot, Client};
    pub use crate::protocol::{ErrorCode, Request, Response};
    pub use crate::server::{DrainHandle, ServeConfig, Server};
    pub use crate::swap::{ServingTree, TreeHandle};
}
