//! The `oct-serve` wire protocol: one request line in, one response line
//! out, UTF-8, newline-terminated.
//!
//! The protocol is deliberately primitive — the robustness machinery around
//! it (admission control, shedding, breakers, hot swap) is the point of the
//! daemon, and a line protocol keeps clients trivial (`nc` works). Shapes:
//!
//! ```text
//! →  PING
//! ←  OK PONG epoch=3
//! →  CATEGORIZE 17,42,108
//! ←  OK COVER epoch=3 cat=12 sim=0.8333 precision=0.7143 covered=1 degraded=0 label=running shoes
//! →  NAVIGATE 12
//! ←  OK NAV cat=12 children=13,14,19
//! →  STATS
//! ←  OK STATS epoch=3 categories=412 max_depth=6 items=50000
//! →  SWAP /path/to/new.oct
//! ←  OK SWAPPED epoch=4 categories=433
//! ←  OVERLOADED queue=64            (typed shed — request was never admitted)
//! ←  ERR unavailable: circuit open  (breaker rejecting while a dependency heals)
//! ```
//!
//! `SCORE` is `CATEGORIZE` minus the label lookup — same cover computation,
//! for clients that only want the number. Unknown or malformed lines get
//! `ERR bad-request: ...`; the connection stays open (one bad line must not
//! kill a pipelined client).

use oct_core::CatId;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; returns the current tree epoch.
    Ping,
    /// Best cover of the item set, with the winning category's label.
    Categorize {
        /// The queried item ids.
        items: Vec<u32>,
    },
    /// Best cover of the item set, label-free.
    Score {
        /// The queried item ids.
        items: Vec<u32>,
    },
    /// Children of one category (tree browsing).
    Navigate {
        /// The category to expand.
        cat: CatId,
    },
    /// Tree + server statistics.
    Stats,
    /// Load a new tree from a path and atomically publish it.
    Swap {
        /// Path to a persisted `.oct` tree.
        path: String,
    },
    /// Begin graceful drain: stop accepting, finish in-flight, exit.
    Shutdown,
}

/// Machine-readable error class on `ERR` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line could not be parsed or referenced a bad id/path.
    BadRequest,
    /// The server is refusing work: circuit open or draining.
    Unavailable,
    /// The handler failed after retries.
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Self::BadRequest => "bad-request",
            Self::Unavailable => "unavailable",
            Self::Internal => "internal",
        }
    }

    fn parse(name: &str) -> Option<Self> {
        match name {
            "bad-request" => Some(Self::BadRequest),
            "unavailable" => Some(Self::Unavailable),
            "internal" => Some(Self::Internal),
            _ => None,
        }
    }
}

/// A response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness ack with the serving tree's epoch.
    Pong {
        /// Current tree epoch.
        epoch: u64,
    },
    /// Best cover of a queried item set.
    Cover {
        /// Epoch of the tree that answered (pins swap consistency).
        epoch: u64,
        /// Winning category, if any scored above zero.
        cat: Option<CatId>,
        /// Its similarity.
        similarity: f64,
        /// Its precision.
        precision: f64,
        /// Whether the cover passes the variant's threshold.
        covered: bool,
        /// Whether the budget expired mid-scan (pessimistic partial answer).
        degraded: bool,
        /// The winning category's label (CATEGORIZE only; last field, may
        /// contain spaces).
        label: Option<String>,
    },
    /// A category's children.
    Nav {
        /// The expanded category.
        cat: CatId,
        /// Its live children, ascending.
        children: Vec<CatId>,
    },
    /// Tree-level statistics.
    Stats {
        /// Current tree epoch.
        epoch: u64,
        /// Live category count.
        categories: usize,
        /// Maximum depth.
        max_depth: usize,
        /// Item slots in the point index.
        items: u32,
    },
    /// A hot swap was published.
    Swapped {
        /// The new epoch.
        epoch: u64,
        /// Live categories in the new tree.
        categories: usize,
    },
    /// Drain acknowledged; the server stops accepting and exits when
    /// in-flight work completes.
    Draining,
    /// Typed load-shed: the request was rejected *before* admission
    /// because the queue or concurrency limit was hit. Clients should back
    /// off and retry; nothing was partially executed.
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// Typed failure.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Request {
    /// Parses one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Self, String> {
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "PING" => Ok(Self::Ping),
            "CATEGORIZE" => Ok(Self::Categorize {
                items: parse_items(rest)?,
            }),
            "SCORE" => Ok(Self::Score {
                items: parse_items(rest)?,
            }),
            "NAVIGATE" => rest
                .parse::<CatId>()
                .map(|cat| Self::Navigate { cat })
                .map_err(|_| format!("bad category id {rest:?}")),
            "STATS" => Ok(Self::Stats),
            "SWAP" => {
                if rest.is_empty() {
                    Err("SWAP needs a tree path".to_owned())
                } else {
                    Ok(Self::Swap {
                        path: rest.to_owned(),
                    })
                }
            }
            "SHUTDOWN" => Ok(Self::Shutdown),
            "" => Err("empty request".to_owned()),
            other => Err(format!("unknown verb {other:?}")),
        }
    }

    /// Encodes the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Self::Ping => "PING".to_owned(),
            Self::Categorize { items } => format!("CATEGORIZE {}", join_items(items)),
            Self::Score { items } => format!("SCORE {}", join_items(items)),
            Self::Navigate { cat } => format!("NAVIGATE {cat}"),
            Self::Stats => "STATS".to_owned(),
            Self::Swap { path } => format!("SWAP {path}"),
            Self::Shutdown => "SHUTDOWN".to_owned(),
        }
    }
}

fn parse_items(text: &str) -> Result<Vec<u32>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad item id {part:?}"))
        })
        .collect()
}

fn join_items(items: &[u32]) -> String {
    items
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

impl Response {
    /// Encodes the response as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Self::Pong { epoch } => format!("OK PONG epoch={epoch}"),
            Self::Cover {
                epoch,
                cat,
                similarity,
                precision,
                covered,
                degraded,
                label,
            } => {
                let mut line = format!(
                    "OK COVER epoch={epoch} cat={} sim={similarity:.6} precision={precision:.6} \
                     covered={} degraded={}",
                    cat.map_or_else(|| "none".to_owned(), |c| c.to_string()),
                    u8::from(*covered),
                    u8::from(*degraded),
                );
                if let Some(label) = label {
                    line.push_str(" label=");
                    line.push_str(label);
                }
                line
            }
            Self::Nav { cat, children } => {
                format!("OK NAV cat={cat} children={}", join_items(children))
            }
            Self::Stats {
                epoch,
                categories,
                max_depth,
                items,
            } => format!(
                "OK STATS epoch={epoch} categories={categories} max_depth={max_depth} \
                 items={items}"
            ),
            Self::Swapped { epoch, categories } => {
                format!("OK SWAPPED epoch={epoch} categories={categories}")
            }
            Self::Draining => "OK DRAINING".to_owned(),
            Self::Overloaded { queue_depth } => format!("OVERLOADED queue={queue_depth}"),
            Self::Error { code, message } => {
                format!("ERR {}: {}", code.name(), message.replace('\n', " "))
            }
        }
    }

    /// Parses one response line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Self, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(rest) = line.strip_prefix("OVERLOADED") {
            let fields = Fields::parse(rest);
            return Ok(Self::Overloaded {
                queue_depth: fields.u64("queue")? as usize,
            });
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = rest
                .split_once(": ")
                .ok_or_else(|| format!("malformed ERR line {line:?}"))?;
            return Ok(Self::Error {
                code: ErrorCode::parse(code).ok_or_else(|| format!("unknown code {code:?}"))?,
                message: message.to_owned(),
            });
        }
        let rest = line
            .strip_prefix("OK ")
            .ok_or_else(|| format!("malformed response {line:?}"))?;
        let (kind, rest) = match rest.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (rest, ""),
        };
        let fields = Fields::parse(rest);
        match kind {
            "PONG" => Ok(Self::Pong {
                epoch: fields.u64("epoch")?,
            }),
            "COVER" => Ok(Self::Cover {
                epoch: fields.u64("epoch")?,
                cat: match fields.str("cat")? {
                    "none" => None,
                    id => Some(
                        id.parse::<CatId>()
                            .map_err(|_| format!("bad cat id {id:?}"))?,
                    ),
                },
                similarity: fields.f64("sim")?,
                precision: fields.f64("precision")?,
                covered: fields.u64("covered")? != 0,
                degraded: fields.u64("degraded")? != 0,
                label: fields.trailing("label="),
            }),
            "NAV" => Ok(Self::Nav {
                cat: fields.u64("cat")? as CatId,
                children: parse_items(fields.str("children").unwrap_or(""))?,
            }),
            "STATS" => Ok(Self::Stats {
                epoch: fields.u64("epoch")?,
                categories: fields.u64("categories")? as usize,
                max_depth: fields.u64("max_depth")? as usize,
                items: fields.u64("items")? as u32,
            }),
            "SWAPPED" => Ok(Self::Swapped {
                epoch: fields.u64("epoch")?,
                categories: fields.u64("categories")? as usize,
            }),
            "DRAINING" => Ok(Self::Draining),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }

    /// `true` for the typed shed response.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, Self::Overloaded { .. })
    }
}

/// `key=value` field access over a response tail. The raw tail is kept so
/// a trailing free-form field (`label=...`, which may contain spaces) can
/// be extracted verbatim.
struct Fields<'a> {
    raw: &'a str,
}

impl<'a> Fields<'a> {
    fn parse(raw: &'a str) -> Self {
        Self { raw: raw.trim() }
    }

    /// The value of `key` (first match, space-delimited).
    fn str(&self, key: &str) -> Result<&'a str, String> {
        for part in self.raw.split_whitespace() {
            if let Some(value) = part.strip_prefix(key) {
                if let Some(value) = value.strip_prefix('=') {
                    return Ok(value);
                }
            }
        }
        Err(format!("missing field {key:?}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.str(key)?
            .parse()
            .map_err(|_| format!("bad integer field {key:?}"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.str(key)?
            .parse()
            .map_err(|_| format!("bad float field {key:?}"))
    }

    /// Everything after `marker` to end of line (for free-form trailers).
    fn trailing(&self, marker: &str) -> Option<String> {
        self.raw
            .find(marker)
            .map(|at| self.raw[at + marker.len()..].to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Ping,
            Request::Categorize {
                items: vec![17, 42, 108],
            },
            Request::Score { items: vec![5] },
            Request::Navigate { cat: 12 },
            Request::Stats,
            Request::Swap {
                path: "/tmp/new tree.oct".to_owned(),
            },
            Request::Shutdown,
        ];
        for req in cases {
            let line = req.encode();
            assert_eq!(Request::parse(&line).expect("roundtrip"), req, "{line}");
        }
    }

    #[test]
    fn request_parse_is_lenient_about_case_and_spacing() {
        assert_eq!(Request::parse("ping").expect("ok"), Request::Ping);
        assert_eq!(
            Request::parse("  categorize 1, 2 ,3  ").expect("ok"),
            Request::Categorize {
                items: vec![1, 2, 3]
            }
        );
        assert_eq!(
            Request::parse("CATEGORIZE").expect("empty set allowed"),
            Request::Categorize { items: Vec::new() }
        );
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("FROBNICATE 1").is_err());
        assert!(Request::parse("CATEGORIZE 1,x").is_err());
        assert!(Request::parse("NAVIGATE banana").is_err());
        assert!(Request::parse("SWAP").is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let cases = [
            Response::Pong { epoch: 3 },
            Response::Cover {
                epoch: 7,
                cat: Some(12),
                similarity: 0.833333,
                precision: 0.714286,
                covered: true,
                degraded: false,
                label: Some("running shoes".to_owned()),
            },
            Response::Cover {
                epoch: 7,
                cat: None,
                similarity: 0.0,
                precision: 1.0,
                covered: false,
                degraded: true,
                label: None,
            },
            Response::Nav {
                cat: 12,
                children: vec![13, 14, 19],
            },
            Response::Nav {
                cat: 9,
                children: Vec::new(),
            },
            Response::Stats {
                epoch: 3,
                categories: 412,
                max_depth: 6,
                items: 50_000,
            },
            Response::Swapped {
                epoch: 4,
                categories: 433,
            },
            Response::Draining,
            Response::Overloaded { queue_depth: 64 },
            Response::Error {
                code: ErrorCode::Unavailable,
                message: "circuit open".to_owned(),
            },
        ];
        for resp in cases {
            let line = resp.encode();
            assert_eq!(Response::parse(&line).expect("roundtrip"), resp, "{line}");
        }
    }

    #[test]
    fn overloaded_is_typed_and_detectable() {
        let resp = Response::parse("OVERLOADED queue=17").expect("parses");
        assert!(resp.is_overloaded());
        assert_eq!(resp, Response::Overloaded { queue_depth: 17 });
        assert!(!Response::Pong { epoch: 0 }.is_overloaded());
    }

    #[test]
    fn labels_with_spaces_survive() {
        let resp = Response::Cover {
            epoch: 1,
            cat: Some(2),
            similarity: 1.0,
            precision: 1.0,
            covered: true,
            degraded: false,
            label: Some("black running shoes size=44".to_owned()),
        };
        match Response::parse(&resp.encode()).expect("parses") {
            Response::Cover { label, .. } => {
                assert_eq!(label.as_deref(), Some("black running shoes size=44"));
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn error_newlines_cannot_forge_extra_lines() {
        let resp = Response::Error {
            code: ErrorCode::Internal,
            message: "line1\nOK PONG epoch=9".to_owned(),
        };
        assert!(!resp.encode().contains('\n'), "newline must be stripped");
    }

    #[test]
    fn response_parse_rejects_garbage() {
        assert!(Response::parse("").is_err());
        assert!(Response::parse("YO").is_err());
        assert!(Response::parse("OK NOPE x=1").is_err());
        assert!(Response::parse("ERR what").is_err());
        assert!(Response::parse("ERR martian: oh no").is_err());
        assert!(Response::parse("OK PONG").is_err(), "missing epoch");
    }
}
