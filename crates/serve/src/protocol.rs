//! The `oct-serve` wire protocol: one request line in, one response line
//! out, UTF-8, newline-terminated.
//!
//! The protocol is deliberately primitive — the robustness machinery around
//! it (admission control, shedding, breakers, hot swap) is the point of the
//! daemon, and a line protocol keeps clients trivial (`nc` works). Shapes:
//!
//! ```text
//! →  PING
//! ←  OK PONG epoch=3
//! →  CATEGORIZE 17,42,108
//! ←  OK COVER epoch=3 cat=12 sim=0.8333 precision=0.7143 covered=1 degraded=0 label=running shoes
//! →  NAVIGATE 12
//! ←  OK NAV cat=12 children=13,14,19
//! →  STATS
//! ←  OK STATS epoch=3 categories=412 max_depth=6 items=50000 degraded=0
//! →  SWAP /path/to/new.oct
//! ←  OK SWAPPED epoch=4 categories=433
//! ←  OVERLOADED queue=64            (typed shed — request was never admitted)
//! ←  ERR unavailable: circuit open  (breaker rejecting while a dependency heals)
//! ```
//!
//! Router fan-out adds two optional markers. Sub-queries carry a shard
//! scope tag (`SCORE 17,42 shard=1`) so backends can attribute per-shard
//! load; and a cover merged from a fleet with dead shards carries
//! `partial=1 missing=<shard-ids>` (before the label trailer), the typed
//! PARTIAL degradation instead of an error.
//!
//! `SCORE` is `CATEGORIZE` minus the label lookup — same cover computation,
//! for clients that only want the number. Unknown or malformed lines get
//! `ERR bad-request: ...`; the connection stays open (one bad line must not
//! kill a pipelined client).

use oct_core::CatId;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; returns the current tree epoch.
    Ping,
    /// Best cover of the item set, with the winning category's label.
    Categorize {
        /// The queried item ids.
        items: Vec<u32>,
        /// Shard scope tag (router fan-out): marks this request as the
        /// sub-query for one shard's slice of a larger item set. Backends
        /// treat it as routing metadata — the cover computation is
        /// unchanged — but count scoped traffic separately so per-shard
        /// load is attributable.
        shard: Option<u32>,
    },
    /// Best cover of the item set, label-free.
    Score {
        /// The queried item ids.
        items: Vec<u32>,
        /// Shard scope tag (see [`Request::Categorize::shard`]).
        shard: Option<u32>,
    },
    /// Children of one category (tree browsing).
    Navigate {
        /// The category to expand.
        cat: CatId,
    },
    /// Calibrated top-k categories for an item set (`NAVIGATE <k>
    /// items=1,2,3 [ef=N]`): ANN candidate generation over centroid
    /// embeddings, exact-reranked, under the usual budget contract.
    NavigateTopK {
        /// How many categories to return (strictly positive).
        k: usize,
        /// The queried item ids.
        items: Vec<u32>,
        /// ANN beam width override; `None` uses the server default.
        ef: Option<usize>,
    },
    /// Tree + server statistics.
    Stats,
    /// Load a new tree from a path and atomically publish it.
    Swap {
        /// Path to a persisted `.oct` tree.
        path: String,
    },
    /// Begin graceful drain: stop accepting, finish in-flight, exit.
    Shutdown,
}

/// Machine-readable error class on `ERR` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line could not be parsed or referenced a bad id/path.
    BadRequest,
    /// The server is refusing work: circuit open or draining.
    Unavailable,
    /// The handler failed after retries.
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Self::BadRequest => "bad-request",
            Self::Unavailable => "unavailable",
            Self::Internal => "internal",
        }
    }

    fn parse(name: &str) -> Option<Self> {
        match name {
            "bad-request" => Some(Self::BadRequest),
            "unavailable" => Some(Self::Unavailable),
            "internal" => Some(Self::Internal),
            _ => None,
        }
    }
}

/// A response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness ack with the serving tree's epoch.
    Pong {
        /// Current tree epoch.
        epoch: u64,
    },
    /// Best cover of a queried item set.
    Cover {
        /// Epoch of the tree that answered (pins swap consistency).
        epoch: u64,
        /// Winning category, if any scored above zero.
        cat: Option<CatId>,
        /// Its similarity.
        similarity: f64,
        /// Its precision.
        precision: f64,
        /// Whether the cover passes the variant's threshold.
        covered: bool,
        /// Whether the budget expired mid-scan (pessimistic partial answer).
        degraded: bool,
        /// Shards that contributed no answer (router fan-out only; empty
        /// for single-server responses and full-fleet merges). A non-empty
        /// list is the typed `PARTIAL` marker: the cover is a
        /// deterministic merge of the surviving shards.
        missing: Vec<u32>,
        /// The winning category's label (CATEGORIZE only; last field, may
        /// contain spaces).
        label: Option<String>,
    },
    /// A category's children.
    Nav {
        /// The expanded category.
        cat: CatId,
        /// Its live children, ascending.
        children: Vec<CatId>,
    },
    /// Calibrated top-k categories for an item set, best first.
    TopK {
        /// Epoch of the tree that answered.
        epoch: u64,
        /// The requested k.
        k: usize,
        /// The effective ANN beam width used.
        ef: usize,
        /// Whether the budget expired mid-rerank (pessimistic partial
        /// ranking).
        degraded: bool,
        /// Ranked `(category, similarity)` pairs, at most `k`.
        results: Vec<(CatId, f64)>,
    },
    /// Tree-level statistics.
    Stats {
        /// Current tree epoch.
        epoch: u64,
        /// Live category count.
        categories: usize,
        /// Maximum depth.
        max_depth: usize,
        /// Item slots in the point index.
        items: u32,
        /// Sticky degraded flag: has any answer since startup been
        /// degraded (budget expiry, partial fan-out, shed replica)?
        /// Health probes use this plus `epoch` to spot limping or
        /// stale-epoch replicas after a SWAP.
        degraded: bool,
    },
    /// A hot swap was published.
    Swapped {
        /// The new epoch.
        epoch: u64,
        /// Live categories in the new tree.
        categories: usize,
    },
    /// Drain acknowledged; the server stops accepting and exits when
    /// in-flight work completes.
    Draining,
    /// Typed load-shed: the request was rejected *before* admission
    /// because the queue or concurrency limit was hit. Clients should back
    /// off and retry; nothing was partially executed.
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// Typed failure.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Request {
    /// Parses one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Self, String> {
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "PING" => Ok(Self::Ping),
            "CATEGORIZE" => {
                let (items, shard) = parse_scoped_items(rest)?;
                Ok(Self::Categorize { items, shard })
            }
            "SCORE" => {
                let (items, shard) = parse_scoped_items(rest)?;
                Ok(Self::Score { items, shard })
            }
            "NAVIGATE" => {
                if rest.contains("items=") {
                    parse_navigate_topk(rest)
                } else {
                    rest.parse::<CatId>()
                        .map(|cat| Self::Navigate { cat })
                        .map_err(|_| format!("bad category id {rest:?}"))
                }
            }
            "STATS" => Ok(Self::Stats),
            "SWAP" => {
                if rest.is_empty() {
                    Err("SWAP needs a tree path".to_owned())
                } else {
                    Ok(Self::Swap {
                        path: rest.to_owned(),
                    })
                }
            }
            "SHUTDOWN" => Ok(Self::Shutdown),
            "" => Err("empty request".to_owned()),
            other => Err(format!("unknown verb {other:?}")),
        }
    }

    /// Encodes the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Self::Ping => "PING".to_owned(),
            Self::Categorize { items, shard } => {
                format!("CATEGORIZE {}{}", join_items(items), shard_suffix(*shard))
            }
            Self::Score { items, shard } => {
                format!("SCORE {}{}", join_items(items), shard_suffix(*shard))
            }
            Self::Navigate { cat } => format!("NAVIGATE {cat}"),
            Self::NavigateTopK { k, items, ef } => {
                let ef = ef.map_or_else(String::new, |ef| format!(" ef={ef}"));
                format!("NAVIGATE {k} items={}{ef}", join_items(items))
            }
            Self::Stats => "STATS".to_owned(),
            Self::Swap { path } => format!("SWAP {path}"),
            Self::Shutdown => "SHUTDOWN".to_owned(),
        }
    }
}

/// Parses the top-k form of NAVIGATE: `<k> items=1,2,3 [ef=N]`. Item lists
/// here are compact (no spaces) so tokens split on whitespace.
fn parse_navigate_topk(text: &str) -> Result<Request, String> {
    let mut k: Option<usize> = None;
    let mut items: Option<Vec<u32>> = None;
    let mut ef: Option<usize> = None;
    for (i, token) in text.split_whitespace().enumerate() {
        if let Some(value) = token.strip_prefix("items=") {
            items = Some(parse_items(value)?);
        } else if let Some(value) = token.strip_prefix("ef=") {
            let parsed = value
                .parse::<usize>()
                .map_err(|_| format!("bad ef {value:?}"))?;
            if parsed == 0 {
                return Err("ef must be positive".to_owned());
            }
            ef = Some(parsed);
        } else if i == 0 {
            k = Some(
                token
                    .parse::<usize>()
                    .map_err(|_| format!("bad top-k count {token:?}"))?,
            );
        } else {
            return Err(format!("unexpected token {token:?}"));
        }
    }
    let k = k.ok_or("NAVIGATE top-k needs a leading count")?;
    if k == 0 {
        return Err("top-k count must be positive".to_owned());
    }
    let items = items.ok_or("NAVIGATE top-k needs items=")?;
    Ok(Request::NavigateTopK { k, items, ef })
}

/// Parses an item list with an optional trailing `shard=N` scope tag
/// (`CATEGORIZE 1,2,3 shard=2`, or `SCORE shard=2` for an empty slice).
fn parse_scoped_items(text: &str) -> Result<(Vec<u32>, Option<u32>), String> {
    let parse_shard = |value: &str| {
        value
            .parse::<u32>()
            .map_err(|_| format!("bad shard id {value:?}"))
    };
    if let Some((head, tail)) = text.rsplit_once(char::is_whitespace) {
        if let Some(value) = tail.strip_prefix("shard=") {
            return Ok((parse_items(head.trim())?, Some(parse_shard(value)?)));
        }
    } else if let Some(value) = text.strip_prefix("shard=") {
        return Ok((Vec::new(), Some(parse_shard(value)?)));
    }
    Ok((parse_items(text)?, None))
}

fn shard_suffix(shard: Option<u32>) -> String {
    match shard {
        Some(s) => format!(" shard={s}"),
        None => String::new(),
    }
}

fn parse_items(text: &str) -> Result<Vec<u32>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad item id {part:?}"))
        })
        .collect()
}

fn join_items(items: &[u32]) -> String {
    items
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

impl Response {
    /// Encodes the response as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Self::Pong { epoch } => format!("OK PONG epoch={epoch}"),
            Self::Cover {
                epoch,
                cat,
                similarity,
                precision,
                covered,
                degraded,
                missing,
                label,
            } => {
                let mut line = format!(
                    "OK COVER epoch={epoch} cat={} sim={similarity:.6} precision={precision:.6} \
                     covered={} degraded={}",
                    cat.map_or_else(|| "none".to_owned(), |c| c.to_string()),
                    u8::from(*covered),
                    u8::from(*degraded),
                );
                // The PARTIAL marker precedes the free-form label trailer so
                // it always parses as a real field (first match wins) and is
                // never forged by label text.
                if !missing.is_empty() {
                    line.push_str(&format!(" partial=1 missing={}", join_items(missing)));
                }
                if let Some(label) = label {
                    line.push_str(" label=");
                    line.push_str(label);
                }
                line
            }
            Self::Nav { cat, children } => {
                format!("OK NAV cat={cat} children={}", join_items(children))
            }
            Self::TopK {
                epoch,
                k,
                ef,
                degraded,
                results,
            } => {
                let ranked = results
                    .iter()
                    .map(|(cat, score)| format!("{cat}:{score:.6}"))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "OK TOPK epoch={epoch} k={k} ef={ef} degraded={} results={ranked}",
                    u8::from(*degraded)
                )
            }
            Self::Stats {
                epoch,
                categories,
                max_depth,
                items,
                degraded,
            } => format!(
                "OK STATS epoch={epoch} categories={categories} max_depth={max_depth} \
                 items={items} degraded={}",
                u8::from(*degraded)
            ),
            Self::Swapped { epoch, categories } => {
                format!("OK SWAPPED epoch={epoch} categories={categories}")
            }
            Self::Draining => "OK DRAINING".to_owned(),
            Self::Overloaded { queue_depth } => format!("OVERLOADED queue={queue_depth}"),
            Self::Error { code, message } => {
                format!("ERR {}: {}", code.name(), message.replace('\n', " "))
            }
        }
    }

    /// Parses one response line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Self, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(rest) = line.strip_prefix("OVERLOADED") {
            let fields = Fields::parse(rest);
            return Ok(Self::Overloaded {
                queue_depth: fields.u64("queue")? as usize,
            });
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = rest
                .split_once(": ")
                .ok_or_else(|| format!("malformed ERR line {line:?}"))?;
            return Ok(Self::Error {
                code: ErrorCode::parse(code).ok_or_else(|| format!("unknown code {code:?}"))?,
                message: message.to_owned(),
            });
        }
        let rest = line
            .strip_prefix("OK ")
            .ok_or_else(|| format!("malformed response {line:?}"))?;
        let (kind, rest) = match rest.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (rest, ""),
        };
        let fields = Fields::parse(rest);
        match kind {
            "PONG" => Ok(Self::Pong {
                epoch: fields.u64("epoch")?,
            }),
            "COVER" => {
                // Optional fields (partial/missing) are resolved against
                // the head of the line — everything before the free-form
                // label trailer — so label text can never forge them.
                let head = Fields::parse(match rest.find("label=") {
                    Some(at) => &rest[..at],
                    None => rest,
                });
                Ok(Self::Cover {
                    epoch: fields.u64("epoch")?,
                    cat: match fields.str("cat")? {
                        "none" => None,
                        id => Some(
                            id.parse::<CatId>()
                                .map_err(|_| format!("bad cat id {id:?}"))?,
                        ),
                    },
                    similarity: fields.f64("sim")?,
                    precision: fields.f64("precision")?,
                    covered: fields.u64("covered")? != 0,
                    degraded: fields.u64("degraded")? != 0,
                    missing: if head.u64("partial").unwrap_or(0) != 0 {
                        parse_items(head.str("missing").unwrap_or(""))?
                    } else {
                        Vec::new()
                    },
                    label: fields.trailing("label="),
                })
            }
            "NAV" => Ok(Self::Nav {
                cat: fields.u64("cat")? as CatId,
                children: parse_items(fields.str("children").unwrap_or(""))?,
            }),
            "TOPK" => {
                let raw = fields.str("results").unwrap_or("");
                let mut results = Vec::new();
                if !raw.is_empty() {
                    for part in raw.split(',') {
                        let (cat, score) = part
                            .split_once(':')
                            .ok_or_else(|| format!("bad ranked entry {part:?}"))?;
                        results.push((
                            cat.parse::<CatId>()
                                .map_err(|_| format!("bad cat id {cat:?}"))?,
                            score
                                .parse::<f64>()
                                .map_err(|_| format!("bad score {score:?}"))?,
                        ));
                    }
                }
                Ok(Self::TopK {
                    epoch: fields.u64("epoch")?,
                    k: fields.u64("k")? as usize,
                    ef: fields.u64("ef")? as usize,
                    degraded: fields.u64("degraded")? != 0,
                    results,
                })
            }
            "STATS" => Ok(Self::Stats {
                epoch: fields.u64("epoch")?,
                categories: fields.u64("categories")? as usize,
                max_depth: fields.u64("max_depth")? as usize,
                items: fields.u64("items")? as u32,
                // Lenient default keeps old single-server responses valid.
                degraded: fields.u64("degraded").unwrap_or(0) != 0,
            }),
            "SWAPPED" => Ok(Self::Swapped {
                epoch: fields.u64("epoch")?,
                categories: fields.u64("categories")? as usize,
            }),
            "DRAINING" => Ok(Self::Draining),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }

    /// `true` for the typed shed response.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, Self::Overloaded { .. })
    }

    /// `true` for a cover carrying the `PARTIAL` marker (some shards
    /// contributed no answer).
    pub fn is_partial(&self) -> bool {
        matches!(self, Self::Cover { missing, .. } if !missing.is_empty())
    }
}

/// `key=value` field access over a response tail. The raw tail is kept so
/// a trailing free-form field (`label=...`, which may contain spaces) can
/// be extracted verbatim.
struct Fields<'a> {
    raw: &'a str,
}

impl<'a> Fields<'a> {
    fn parse(raw: &'a str) -> Self {
        Self { raw: raw.trim() }
    }

    /// The value of `key` (first match, space-delimited).
    fn str(&self, key: &str) -> Result<&'a str, String> {
        for part in self.raw.split_whitespace() {
            if let Some(value) = part.strip_prefix(key) {
                if let Some(value) = value.strip_prefix('=') {
                    return Ok(value);
                }
            }
        }
        Err(format!("missing field {key:?}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.str(key)?
            .parse()
            .map_err(|_| format!("bad integer field {key:?}"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.str(key)?
            .parse()
            .map_err(|_| format!("bad float field {key:?}"))
    }

    /// Everything after `marker` to end of line (for free-form trailers).
    fn trailing(&self, marker: &str) -> Option<String> {
        self.raw
            .find(marker)
            .map(|at| self.raw[at + marker.len()..].to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Ping,
            Request::Categorize {
                items: vec![17, 42, 108],
                shard: None,
            },
            Request::Categorize {
                items: vec![17, 42],
                shard: Some(2),
            },
            Request::Score {
                items: vec![5],
                shard: None,
            },
            Request::Score {
                items: Vec::new(),
                shard: Some(0),
            },
            Request::Navigate { cat: 12 },
            Request::NavigateTopK {
                k: 5,
                items: vec![1, 2, 3],
                ef: None,
            },
            Request::NavigateTopK {
                k: 3,
                items: Vec::new(),
                ef: Some(128),
            },
            Request::Stats,
            Request::Swap {
                path: "/tmp/new tree.oct".to_owned(),
            },
            Request::Shutdown,
        ];
        for req in cases {
            let line = req.encode();
            assert_eq!(Request::parse(&line).expect("roundtrip"), req, "{line}");
        }
    }

    #[test]
    fn request_parse_is_lenient_about_case_and_spacing() {
        assert_eq!(Request::parse("ping").expect("ok"), Request::Ping);
        assert_eq!(
            Request::parse("  categorize 1, 2 ,3  ").expect("ok"),
            Request::Categorize {
                items: vec![1, 2, 3],
                shard: None,
            }
        );
        assert_eq!(
            Request::parse("CATEGORIZE").expect("empty set allowed"),
            Request::Categorize {
                items: Vec::new(),
                shard: None,
            }
        );
    }

    #[test]
    fn shard_scope_tag_roundtrips() {
        assert_eq!(
            Request::parse("SCORE 4,9 shard=1").expect("ok"),
            Request::Score {
                items: vec![4, 9],
                shard: Some(1),
            }
        );
        assert_eq!(
            Request::parse("CATEGORIZE shard=3").expect("scoped empty slice"),
            Request::Categorize {
                items: Vec::new(),
                shard: Some(3),
            }
        );
        assert!(Request::parse("SCORE 1 shard=banana").is_err());
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("FROBNICATE 1").is_err());
        assert!(Request::parse("CATEGORIZE 1,x").is_err());
        assert!(Request::parse("NAVIGATE banana").is_err());
        assert!(Request::parse("SWAP").is_err());
    }

    #[test]
    fn navigate_topk_parses_and_rejects_degenerate_forms() {
        assert_eq!(
            Request::parse("NAVIGATE 5 items=1,2,3").expect("ok"),
            Request::NavigateTopK {
                k: 5,
                items: vec![1, 2, 3],
                ef: None
            }
        );
        assert_eq!(
            Request::parse("NAVIGATE 2 items=9 ef=64").expect("ok"),
            Request::NavigateTopK {
                k: 2,
                items: vec![9],
                ef: Some(64)
            }
        );
        // The single-category browse form is untouched.
        assert_eq!(
            Request::parse("NAVIGATE 12").expect("ok"),
            Request::Navigate { cat: 12 }
        );
        assert!(Request::parse("NAVIGATE 0 items=1").is_err(), "k = 0");
        assert!(Request::parse("NAVIGATE items=1").is_err(), "missing k");
        assert!(Request::parse("NAVIGATE x items=1").is_err());
        assert!(Request::parse("NAVIGATE 3 items=1,y").is_err());
        assert!(Request::parse("NAVIGATE 3 items=1 ef=0").is_err());
        assert!(Request::parse("NAVIGATE 3 items=1 bogus").is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let cases = [
            Response::Pong { epoch: 3 },
            Response::Cover {
                epoch: 7,
                cat: Some(12),
                similarity: 0.833333,
                precision: 0.714286,
                covered: true,
                degraded: false,
                missing: Vec::new(),
                label: Some("running shoes".to_owned()),
            },
            Response::Cover {
                epoch: 7,
                cat: None,
                similarity: 0.0,
                precision: 1.0,
                covered: false,
                degraded: true,
                missing: Vec::new(),
                label: None,
            },
            Response::Cover {
                epoch: 9,
                cat: Some(4),
                similarity: 0.5,
                precision: 0.25,
                covered: false,
                degraded: true,
                missing: vec![0, 2],
                label: Some("partial merge".to_owned()),
            },
            Response::Nav {
                cat: 12,
                children: vec![13, 14, 19],
            },
            Response::Nav {
                cat: 9,
                children: Vec::new(),
            },
            Response::TopK {
                epoch: 4,
                k: 3,
                ef: 64,
                degraded: false,
                results: vec![(12, 0.833333), (7, 0.5), (2, 0.25)],
            },
            Response::TopK {
                epoch: 4,
                k: 5,
                ef: 128,
                degraded: true,
                results: Vec::new(),
            },
            Response::Stats {
                epoch: 3,
                categories: 412,
                max_depth: 6,
                items: 50_000,
                degraded: false,
            },
            Response::Stats {
                epoch: 5,
                categories: 1,
                max_depth: 1,
                items: 10,
                degraded: true,
            },
            Response::Swapped {
                epoch: 4,
                categories: 433,
            },
            Response::Draining,
            Response::Overloaded { queue_depth: 64 },
            Response::Error {
                code: ErrorCode::Unavailable,
                message: "circuit open".to_owned(),
            },
        ];
        for resp in cases {
            let line = resp.encode();
            assert_eq!(Response::parse(&line).expect("roundtrip"), resp, "{line}");
        }
    }

    #[test]
    fn overloaded_is_typed_and_detectable() {
        let resp = Response::parse("OVERLOADED queue=17").expect("parses");
        assert!(resp.is_overloaded());
        assert_eq!(resp, Response::Overloaded { queue_depth: 17 });
        assert!(!Response::Pong { epoch: 0 }.is_overloaded());
    }

    #[test]
    fn partial_marker_roundtrips_and_is_detectable() {
        let resp = Response::Cover {
            epoch: 2,
            cat: Some(7),
            similarity: 0.5,
            precision: 0.5,
            covered: true,
            degraded: true,
            missing: vec![1, 3],
            label: None,
        };
        assert!(resp.is_partial());
        let line = resp.encode();
        assert!(line.contains("partial=1 missing=1,3"), "{line}");
        assert_eq!(Response::parse(&line).expect("roundtrip"), resp);
        // A full answer carries no marker at all.
        let full = Response::Cover {
            epoch: 2,
            cat: Some(7),
            similarity: 0.5,
            precision: 0.5,
            covered: true,
            degraded: false,
            missing: Vec::new(),
            label: None,
        };
        assert!(!full.is_partial());
        assert!(!full.encode().contains("partial"), "no marker when full");
    }

    #[test]
    fn label_text_cannot_forge_a_partial_marker() {
        let resp = Response::Cover {
            epoch: 1,
            cat: Some(2),
            similarity: 1.0,
            precision: 1.0,
            covered: true,
            degraded: false,
            missing: Vec::new(),
            label: Some("weird partial=1 missing=9 label".to_owned()),
        };
        match Response::parse(&resp.encode()).expect("parses") {
            Response::Cover { missing, label, .. } => {
                assert!(missing.is_empty(), "forged marker ignored");
                assert_eq!(label.as_deref(), Some("weird partial=1 missing=9 label"));
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn stats_without_degraded_field_defaults_to_false() {
        // Old single-server STATS lines (pre-health-fields) stay parseable.
        match Response::parse("OK STATS epoch=3 categories=4 max_depth=2 items=100")
            .expect("lenient parse")
        {
            Response::Stats { degraded, .. } => assert!(!degraded),
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn labels_with_spaces_survive() {
        let resp = Response::Cover {
            epoch: 1,
            cat: Some(2),
            similarity: 1.0,
            precision: 1.0,
            covered: true,
            degraded: false,
            missing: Vec::new(),
            label: Some("black running shoes size=44".to_owned()),
        };
        match Response::parse(&resp.encode()).expect("parses") {
            Response::Cover { label, .. } => {
                assert_eq!(label.as_deref(), Some("black running shoes size=44"));
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn error_newlines_cannot_forge_extra_lines() {
        let resp = Response::Error {
            code: ErrorCode::Internal,
            message: "line1\nOK PONG epoch=9".to_owned(),
        };
        assert!(!resp.encode().contains('\n'), "newline must be stripped");
    }

    #[test]
    fn response_parse_rejects_garbage() {
        assert!(Response::parse("").is_err());
        assert!(Response::parse("YO").is_err());
        assert!(Response::parse("OK NOPE x=1").is_err());
        assert!(Response::parse("ERR what").is_err());
        assert!(Response::parse("ERR martian: oh no").is_err());
        assert!(Response::parse("OK PONG").is_err(), "missing epoch");
    }
}
