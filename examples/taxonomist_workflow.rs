//! The complete taxonomist workflow of §5.4 on one synthetic dataset:
//!
//! 1. build the tree with CTCR;
//! 2. inspect what failed — orphaned items, misassignment outliers;
//! 3. re-employ with relaxed thresholds for uncovered queries;
//! 4. auto-label the categories from the queries they match;
//! 5. add navigation intermediates (score-free) and check the structure;
//! 6. persist the tree and instance for the serving pipeline.
//!
//! ```text
//! cargo run --bin taxonomist_workflow
//! ```

use oct_core::labeling;
use oct_core::navigation;
use oct_core::persist;
use oct_core::prelude::*;
use oct_core::workflow;
use oct_datagen::embeddings::item_embeddings;
use oct_datagen::{generate, DatasetName};

fn main() {
    let ds = generate(DatasetName::B, 0.05, Similarity::jaccard_threshold(0.85));
    println!(
        "dataset B (scaled): {} items, {} query sets\n",
        ds.catalog.len(),
        ds.instance.num_sets()
    );

    // 1. First build.
    let first = ctcr::run(&ds.instance, &CtcrConfig::default());
    println!(
        "first build: score {:.3}, {}/{} sets covered, {} categories",
        first.score.normalized,
        first.score.covered_count(),
        ds.instance.num_sets(),
        first.tree.live_categories().len()
    );

    // 2a. Orphaned items: rare items in no covering category.
    let orphans = workflow::orphaned_items(&ds.instance, &first.tree);
    println!(
        "orphans: {} items; {} queries concentrate ≥2 orphans (threshold-relax candidates)",
        orphans.items.len(),
        orphans.concentrated_sets.len()
    );

    // 2b. Misassignment detector (the paper's Nike-Blazer tool).
    let embeddings = item_embeddings(&ds.catalog);
    let outliers = workflow::embedding_outliers(&first.tree, &embeddings, 6.0);
    println!("embedding outliers flagged: {} categories", outliers.len());
    for o in outliers.iter().take(3) {
        println!(
            "  category {:?}: item {} deviates {:.1}x from the centroid",
            first.tree.label(o.category).unwrap_or("?"),
            o.outlier_item,
            o.deviation
        );
    }

    // 3. Reemployment with relaxed thresholds for uncovered queries.
    let outcome =
        workflow::iterate(&ds.instance, &CtcrConfig::default(), 3, 0.85).expect("valid relief");
    let (reemployed, trace) = (&outcome.result, &outcome.trace);
    println!("\nreemployment rounds:");
    for (round, t) in trace.iter().enumerate() {
        println!(
            "  round {}: {} covered, score {:.3}, {} thresholds relaxed",
            round + 1,
            t.covered,
            t.score,
            t.relaxed
        );
    }

    // 4. Labeling from the matched queries (against the outcome instance,
    //    whose relaxed thresholds defined the covers).
    let mut tree = reemployed.tree.clone();
    let labeled = labeling::apply_labels(&outcome.instance, &mut tree);
    let coherence = labeling::label_coherence(&outcome.instance, &tree);
    let fuzzy = coherence.values().filter(|&&c| c < 0.3).count();
    println!(
        "\nlabeled {labeled} categories; {} multi-match categories with low label coherence",
        fuzzy
    );

    // 5. Navigation: bound the fan-out without touching the score.
    let before = navigation::stats(&tree);
    let score_before = score_tree(&ds.instance, &tree).total;
    let added = navigation::limit_fanout(&mut tree, 12);
    let after = navigation::stats(&tree);
    let score_after = score_tree(&ds.instance, &tree).total;
    println!(
        "navigation: max fan-out {} -> {} ({added} intermediates), score {:.2} -> {:.2}",
        before.max_fanout, after.max_fanout, score_before, score_after
    );
    assert!(score_after + 1e-9 >= score_before);

    // 6. Persist both artifacts.
    let tree_bytes = persist::encode_tree(&tree);
    let instance_bytes = persist::encode_instance(&ds.instance);
    println!(
        "\npersisted: tree {} bytes, instance {} bytes",
        tree_bytes.len(),
        instance_bytes.len()
    );
    let roundtrip = persist::decode_tree(tree_bytes).expect("own encoding decodes");
    assert_eq!(
        roundtrip.live_categories().len(),
        tree.live_categories().len()
    );
    println!("roundtrip OK — ready for the serving pipeline");
}
