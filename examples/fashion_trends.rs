//! Continual conservative updates (§2.3) and trend capture (§5.4).
//!
//! A fashion platform rebuilds its tree every quarter. This example shows
//! the paper's two update mechanisms working together:
//!
//! 1. the existing tree's categories are mixed into the input with a
//!    weight knob controlling how conservative the rebuild is (Table 1's
//!    mechanism) — we sweep the knob and show the contribution split
//!    tracking it;
//! 2. a sudden demand spike (the paper's "Kobe memorabilia" example) is
//!    injected as a heavily-weighted new query, and the rebuilt tree grows
//!    a dedicated category for it.
//!
//! ```text
//! cargo run --bin fashion_trends
//! ```

use oct_core::prelude::*;
use oct_core::score::covering_map;
use oct_core::update;
use oct_datagen::{generate, DatasetName};

fn main() {
    let similarity = Similarity::jaccard_threshold(0.8);
    let ds = generate(DatasetName::A, 0.2, similarity);
    println!(
        "dataset A (scaled): {} items, {} query sets",
        ds.catalog.len(),
        ds.instance.num_sets()
    );

    // --- Mechanism 1: conservative rebuilds -----------------------------
    println!("\nconservatism knob (query weight fraction -> score contribution):");
    for &fraction in &[0.9, 0.5, 0.1] {
        let mixed = update::conservative_instance(&ds.instance, &ds.existing, fraction, 3);
        let result = ctcr::run(&mixed.instance, &CtcrConfig::default());
        let (q, e) = mixed.contribution_split(&result.score);
        println!(
            "  queries {:>3.0}% of weight -> {:>5.1}% of score from queries, {:>5.1}% from existing categories",
            fraction * 100.0,
            q * 100.0,
            e * 100.0
        );
    }

    // --- Mechanism 2: a demand spike ------------------------------------
    // Fabricate a trend: a celebrity collection suddenly dominates search.
    // Its result set is an arbitrary slice of the catalog that no existing
    // category isolates.
    let spike_items: Vec<u32> = (0..ds.catalog.len() as u32)
        .filter(|&i| i % 97 < 3) // a scattered ~3% of the catalog
        .collect();
    let spike_weight = ds.instance.total_weight(); // as hot as everything else combined
    let mut sets = ds.instance.sets.clone();
    sets.push(
        InputSet::new(ItemSet::new(spike_items), spike_weight).with_label("celebrity collection"),
    );
    let spiked = Instance::new(ds.instance.num_items, sets, similarity);

    let before = ctcr::run(&ds.instance, &CtcrConfig::default());
    let after = ctcr::run(&spiked, &CtcrConfig::default());
    let spike_idx = (spiked.num_sets() - 1) as u32;
    let covers = covering_map(&spiked, &after.tree);
    let spike_category = covers
        .iter()
        .find(|(_, sets)| sets.contains(&spike_idx))
        .map(|(&cat, _)| after.tree.label(cat).unwrap_or("unlabeled"));
    println!("\ndemand spike injection:");
    println!(
        "  before: {} categories, spike not representable",
        before.tree.live_categories().len()
    );
    println!(
        "  after:  {} categories, spike covered by: {}",
        after.tree.live_categories().len(),
        spike_category.unwrap_or("NOT COVERED")
    );
    assert!(
        spike_category.is_some(),
        "a dominant trend must earn a category"
    );

    // --- Subtree re-run ---------------------------------------------------
    // Re-run only inside one top-level branch of the existing tree, as
    // taxonomists do for localized fixes.
    let top = ds.existing.children(ROOT)[0];
    let sub = update::subtree_instance(&ds.instance, &ds.existing, top, 0.7);
    let sub_result = ctcr::run(&sub, &CtcrConfig::default());
    println!(
        "\nsubtree re-run under {:?}: {} local sets, local score {:.3}",
        ds.existing.label(top).unwrap_or("?"),
        sub.num_sets(),
        sub_result.score.normalized
    );
}
