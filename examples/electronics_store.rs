//! The introduction's motivating scenario (Figure 1): an electronics store
//! whose manual tree splits memory cards under "Cameras" and "Phones",
//! while users overwhelmingly search "memory cards" as one category.
//!
//! We synthesize an Electronics catalog, a query log where "memory-card" is
//! the hottest query, and compare the existing tree to the CTCR rebuild:
//! the rebuild gives memory cards one dedicated category.
//!
//! ```text
//! cargo run --bin electronics_store
//! ```

use oct_core::prelude::*;
use oct_core::score::covering_map;
use oct_datagen::existing_tree::{existing_tree, ExistingTreeConfig};
use oct_datagen::preprocess::{build_instance, PreprocessConfig};
use oct_datagen::queries::{generate_queries, QueryConfig};
use oct_datagen::{Catalog, Domain};

fn main() {
    // 1. A synthetic electronics catalog and its manually-built tree.
    let catalog = Catalog::generate(Domain::Electronics, 20_000, 42);
    let manual = existing_tree(&catalog, &ExistingTreeConfig::default());
    println!(
        "catalog: {} items, manual tree: {} categories",
        catalog.len(),
        manual.live_categories().len()
    );

    // 2. A quarter's worth of search queries.
    let log = generate_queries(
        &catalog,
        &QueryConfig {
            num_queries: 800,
            seed: 7,
            ..QueryConfig::default()
        },
    );

    // 3. The paper's preprocessing: clean, threshold, weight, merge.
    let similarity = Similarity::jaccard_threshold(0.8);
    let (instance, stats) = build_instance(
        catalog.len() as u32,
        &log,
        &manual,
        similarity,
        &PreprocessConfig::default(),
    );
    println!(
        "preprocessing: {} raw queries -> {} input sets ({} merges, {} dropped)",
        stats.raw_queries,
        stats.final_sets,
        stats.merged,
        stats.dropped_infrequent + stats.dropped_scattered + stats.dropped_empty
    );

    // 4. Score the existing tree, then rebuild with CTCR.
    let manual_score = score_tree(&instance, &manual);
    let result = ctcr::run(&instance, &CtcrConfig::default());
    result.tree.validate(&instance).expect("valid tree");
    println!(
        "\nexisting tree score: {:.3} ({} of {} query sets covered)",
        manual_score.normalized,
        manual_score.covered_count(),
        instance.num_sets()
    );
    println!(
        "CTCR tree score:     {:.3} ({} of {} query sets covered, {} categories)",
        result.score.normalized,
        result.score.covered_count(),
        instance.num_sets(),
        result.tree.live_categories().len()
    );

    // 5. The memory-cards moment: the hottest queries get dedicated,
    //    labeled categories in the rebuilt tree.
    let covers = covering_map(&instance, &result.tree);
    let mut hottest: Vec<(f64, usize)> = instance
        .sets
        .iter()
        .enumerate()
        .map(|(i, s)| (s.weight, i))
        .collect();
    hottest.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\nhottest queries and their categories in the rebuilt tree:");
    for &(weight, set) in hottest.iter().take(8) {
        let covered_by = covers
            .iter()
            .find(|(_, sets)| sets.contains(&(set as u32)))
            .map(|(&cat, _)| result.tree.label(cat).unwrap_or("unlabeled"));
        println!(
            "  {:>8.1}/day  {:<40} -> {}",
            weight,
            instance.sets[set].label.as_deref().unwrap_or("?"),
            covered_by.unwrap_or("NOT COVERED")
        );
    }
}
