//! Quickstart: build a category tree from a handful of candidate
//! categories.
//!
//! This walks the paper's running example (Figure 2): nine shirts, four
//! query-derived candidate categories, and two problem variants — showing
//! how the variant changes the optimal tree.
//!
//! ```text
//! cargo run --bin quickstart
//! ```

use oct_core::prelude::*;

const ITEMS: [&str; 9] = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];

fn print_tree(tree: &CategoryTree, instance: &Instance) {
    let full = tree.materialize();
    fn walk(tree: &CategoryTree, full: &[ItemSet], cat: CatId, depth: usize) {
        let items: Vec<&str> = full[cat as usize]
            .iter()
            .map(|i| ITEMS[i as usize])
            .collect();
        println!(
            "{}{} {{{}}}",
            "  ".repeat(depth),
            tree.label(cat).unwrap_or("category"),
            items.join(",")
        );
        for &child in tree.children(cat) {
            walk(tree, full, child, depth + 1);
        }
    }
    walk(tree, &full, ROOT, 0);
    let score = score_tree(instance, tree);
    println!(
        "score: {:.3} normalized ({}/{} sets covered)\n",
        score.normalized,
        score.covered_count(),
        instance.num_sets()
    );
}

fn main() {
    // The shirts of the paper's Figure 3: items 0..9 with four candidate
    // categories derived from frequent search queries.
    let sets = vec![
        InputSet::new(ItemSet::new(vec![0, 1, 2, 3, 4]), 2.0).with_label("black shirt"),
        InputSet::new(ItemSet::new(vec![0, 1]), 1.0).with_label("black adidas shirt"),
        InputSet::new(ItemSet::new(vec![2, 3, 4, 5]), 1.0).with_label("nike shirt"),
        InputSet::new(ItemSet::new(vec![0, 1, 5, 6, 7, 8]), 1.0).with_label("long sleeve"),
    ];

    println!("=== Perfect-Recall variant (δ = 0.8) ===");
    println!("Categories must fully contain the sets they cover.\n");
    let instance = Instance::new(9, sets.clone(), Similarity::perfect_recall(0.8));
    let result = ctcr::run(&instance, &CtcrConfig::default());
    result
        .tree
        .validate(&instance)
        .expect("CTCR produces valid trees");
    print_tree(&result.tree, &instance);

    println!("=== threshold Jaccard variant (δ = 0.6) ===");
    println!("Mild recall and precision errors are tolerated; more sets fit.\n");
    let instance = Instance::new(9, sets, Similarity::jaccard_threshold(0.6));
    let result = ctcr::run(&instance, &CtcrConfig::default());
    result
        .tree
        .validate(&instance)
        .expect("CTCR produces valid trees");
    print_tree(&result.tree, &instance);

    println!(
        "Conflicts found: {} two-set, {} three-set; MIS optimal: {}",
        result.stats.conflicts2, result.stats.conflicts3, result.stats.mis_optimal
    );
}
