//! Faceted search with the Perfect-Recall variant (§2.2).
//!
//! When a category page offers a filtering interface, *recall* is what
//! matters: every item the user might filter for must be in the category,
//! while extra items are filtered away. The Perfect-Recall variant encodes
//! exactly that: a category covers a set only if it contains it entirely
//! with precision ≥ δ.
//!
//! This example contrasts Perfect-Recall with threshold Jaccard on the same
//! dataset, showing the trade: PR covers fewer sets (it is stricter) but
//! every covered set is *complete* — no filtered view ever misses an item.
//! It also shows per-set threshold overrides: a flagship query demands
//! exact matching while the long tail is relaxed.
//!
//! ```text
//! cargo run --bin faceted_search
//! ```

use oct_core::prelude::*;
use oct_datagen::{generate, DatasetName};

fn recall_of(instance: &Instance, tree: &CategoryTree) -> (usize, usize) {
    // For each covered set, check whether its best category fully contains
    // it (recall = 1).
    let score = score_tree(instance, tree);
    let full = tree.materialize();
    let mut complete = 0;
    let mut covered = 0;
    for (idx, cover) in score.per_set.iter().enumerate() {
        if !cover.covered {
            continue;
        }
        covered += 1;
        let cat = cover.best_category.expect("covered sets have a category");
        if instance.sets[idx].items.is_subset_of(&full[cat as usize]) {
            complete += 1;
        }
    }
    (complete, covered)
}

fn main() {
    // Electronics-style public dataset (uniform weights, like dataset E).
    let pr = generate(DatasetName::E, 0.1, Similarity::perfect_recall(0.6));
    let jac = generate(DatasetName::E, 0.1, Similarity::jaccard_threshold(0.6));
    println!(
        "dataset E (scaled): {} items, {} query sets\n",
        pr.catalog.len(),
        pr.instance.num_sets()
    );

    let pr_result = ctcr::run(&pr.instance, &CtcrConfig::default());
    let jac_result = ctcr::run(&jac.instance, &CtcrConfig::default());
    pr_result.tree.validate(&pr.instance).expect("valid");
    jac_result.tree.validate(&jac.instance).expect("valid");

    let (pr_complete, pr_covered) = recall_of(&pr.instance, &pr_result.tree);
    let (jac_complete, jac_covered) = recall_of(&jac.instance, &jac_result.tree);
    println!("variant            covered  complete-recall covers");
    println!(
        "Perfect-Recall 0.6  {:>6}  {:>6}  (every cover is filter-safe)",
        pr_covered, pr_complete
    );
    println!(
        "thr. Jaccard   0.6  {:>6}  {:>6}  (covers more, some incomplete)",
        jac_covered, jac_complete
    );
    assert_eq!(
        pr_complete, pr_covered,
        "Perfect-Recall must never produce an incomplete cover"
    );

    // Per-set thresholds: the heaviest query must be matched exactly; the
    // rest may round down to δ = 0.5.
    let mut sets = pr.instance.sets.clone();
    let heaviest = sets
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.weight.total_cmp(&b.1.weight))
        .map(|(i, _)| i)
        .expect("non-empty");
    for (i, s) in sets.iter_mut().enumerate() {
        s.threshold = Some(if i == heaviest { 1.0 } else { 0.5 });
    }
    let tuned = Instance::new(pr.instance.num_items, sets, Similarity::perfect_recall(0.6));
    let tuned_result = ctcr::run(&tuned, &CtcrConfig::default());
    let cover = &tuned_result.score.per_set[heaviest];
    println!(
        "\nper-set thresholds: flagship query {:?} covered={} at precision {:.2} (δ=1 demanded)",
        tuned.sets[heaviest].label.as_deref().unwrap_or("?"),
        cover.covered,
        cover.precision,
    );
    if cover.covered {
        assert!(cover.precision > 1.0 - 1e-9, "δ=1 means exact match");
    }
}
