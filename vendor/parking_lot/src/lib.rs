//! In-repo shim for the subset of `parking_lot` used by this workspace:
//! non-poisoning [`Mutex`] and [`RwLock`] facades over `std::sync`.
//!
//! Matches the parking_lot API shape (`lock()` returns the guard directly,
//! no `Result`); a poisoned std lock is recovered via `into_inner` so a
//! panicking thread never wedges metric collection.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
