//! In-repo shim for the subset of `bytes` 1.x used by this workspace:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] accessors needed by
//! the little-endian persistence format in `oct-core::persist`.

use std::sync::Arc;

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Current readable slice.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(u64::from_le_bytes({
            let mut raw = [0u8; 8];
            self.copy_to_slice(&mut raw);
            raw
        }))
    }

    /// Copies `dst.len()` bytes out and consumes them.
    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

/// Cheaply-cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static slice.
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::from(src.to_vec())
    }

    /// Length of the readable region.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-range (relative to the current readable region).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of range"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the readable region into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Splits off the first `len` bytes as a new `Bytes`, consuming them.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f64_le(-1.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), -1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn slice_and_copy_to_bytes() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.as_ref(), &[2, 3, 4]);
        let mut cur = mid.clone();
        let head = cur.copy_to_bytes(2);
        assert_eq!(head.as_ref(), &[2, 3]);
        assert_eq!(cur.as_ref(), &[4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        let mut out = [0u8; 3];
        b.copy_to_slice(&mut out);
    }
}
