//! In-repo shim for the subset of `proptest` used by this workspace.
//!
//! Implements the `proptest!` test macro, `prop_assert*` / `prop_assume!`,
//! and composable strategies: ranges, tuples, `collection::vec`, `any`,
//! `prop_map`, and `prop_flat_map`. Inputs are sampled from a deterministic
//! per-test RNG (seeded from the test's module path and name). There is no
//! shrinking: a failing case reports its case number and assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// Deterministic per-test random source.
pub type TestRng = rand::rngs::StdRng;

/// Builds the RNG for one test, seeded from its fully-qualified name so
/// each test draws an independent, reproducible stream.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values, composable via `prop_map`/`prop_flat_map`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

/// Strategy drawing from a type's full value range.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`, e.g. `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirroring upstream's `prop::` re-exports.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that run their body over many random inputs.
///
/// Bodies execute inside a closure returning `Result<(), String>`; the
/// `prop_assert*` macros early-return `Err` and `prop_assume!` early-returns
/// `Ok` (skipping the case).
#[macro_export]
macro_rules! proptest {
    (@case ($cfg:expr)) => {};
    (@case ($cfg:expr)
        $(#[$_meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __cfg.cases,
                        __msg
                    );
                }
            }
        }
        $crate::proptest!(@case ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@case ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@case ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), __l, __r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = crate::test_rng("strategies_compose");
        let s = (2usize..=6).prop_flat_map(|n| {
            prop::collection::vec((0u32..10, 0.0f64..1.0), n).prop_map(move |v| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = crate::Strategy::new_value(&s, &mut rng);
            assert!((2..=6).contains(&n));
            assert_eq!(v.len(), n);
            for (x, f) in v {
                assert!(x < 10);
                assert!((0.0..1.0).contains(&f));
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        let s = 0u64..=u64::MAX;
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::new_value(&s, &mut a),
                crate::Strategy::new_value(&s, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(x in 1u32..100, v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assume!(x != 0);
            prop_assert!(x >= 1, "x was {}", x);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0i32..5, 0i32..5)) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_number() {
        // Re-enter the macro machinery manually for a failing body.
        let __cfg = ProptestConfig::with_cases(3);
        let mut __rng = crate::test_rng("failing");
        for __case in 0..__cfg.cases {
            let x = crate::Strategy::new_value(&(0u32..10), &mut __rng);
            let outcome: Result<(), String> = (|| {
                prop_assert!(x > 100, "x={}", x);
                Ok(())
            })();
            if let Err(msg) = outcome {
                panic!(
                    "proptest case {}/{} failed: {}",
                    __case + 1,
                    __cfg.cases,
                    msg
                );
            }
        }
    }
}
