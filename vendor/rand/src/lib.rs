//! In-repo shim for the subset of `rand` 0.8 used by this workspace.
//!
//! Provides [`rngs::StdRng`] (xoshiro256\*\* seeded through SplitMix64),
//! the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`,
//! and [`SeedableRng::seed_from_u64`]. The generated stream is
//! deterministic per seed but does not match upstream `rand`; workspace
//! code asserts distributional properties, never exact values.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait SampleValue {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleValue for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as SampleValue>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    #[inline]
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as SampleValue>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256\*\* — fast, high-quality, deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..4)
            .map(|_| StdRng::seed_from_u64(42).gen::<u64>())
            .collect();
        assert!(first.iter().any(|&x| x != c.gen::<u64>()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools_cover_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi, mut t) = (0u32, 0u32, 0u32);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
            if rng.gen_bool(0.25) {
                t += 1;
            }
        }
        assert!(lo > 4_000 && hi > 4_000, "{lo}/{hi}");
        assert!((1_500..3_500).contains(&t), "{t}");
    }
}
