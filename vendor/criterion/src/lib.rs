//! In-repo shim for the subset of `criterion` used by this workspace's
//! bench targets: `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`/`iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — each benchmark closure runs
//! `sample_size` times and the mean/min wall-clock times are printed.
//! Benchmarks only execute when the binary is invoked with `--bench`
//! (which `cargo bench` passes to `harness = false` targets); under
//! `cargo test` or a bare run the binary exits immediately so the tier-1
//! test suite never pays for benchmark workloads.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim reruns setup every
/// iteration regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh setup per iteration.
    PerIteration,
    /// Upstream batches many small inputs; shim treats as `PerIteration`.
    SmallInput,
    /// Upstream batches few large inputs; shim treats as `PerIteration`.
    LargeInput,
}

/// Composite benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing collector handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        black_box(&out);
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.samples.push(start.elapsed());
        black_box(&out);
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Runs and reports one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; the shim reports
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len().max(1) as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{}: mean {:?}, min {:?} over {} samples",
            self.name,
            id,
            mean,
            min,
            samples.len()
        );
    }
}

/// `true` when the binary was invoked by `cargo bench` (which passes
/// `--bench` to `harness = false` targets). Anything else — notably
/// `cargo test` — must not execute benchmark workloads.
pub fn should_run_benchmarks() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benchmarks() {
                println!("criterion shim: not invoked with --bench, skipping");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(4);
        let mut runs = 0;
        group.bench_function("counting", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::PerIteration);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("ctcr", 0.8).to_string(), "ctcr/0.8");
    }
}
