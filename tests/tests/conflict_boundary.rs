//! Boundary regression tests for `classify_pair` (paper §3.3).
//!
//! The closed-form together/separately predicates use `ceil_tolerant` /
//! `floor_tolerant` so that floating-point drift in `δ·|q|` cannot flip a
//! classification exactly at the threshold (e.g. `10·(1−0.9)` evaluating to
//! `0.9999999999999998`). These tests pin that behavior two ways:
//!
//! 1. against a brute-force enumerator over all candidate category pairs on
//!    small instances, using exact rational arithmetic for coverage (δ is a
//!    fraction `num/den`, so `sim(q, C) ≥ δ` is an integer comparison); the
//!    δ grid deliberately includes values where `δ·|q|` is integral — the
//!    cases where naive `floor`/`ceil` and the tolerant versions diverge;
//! 2. with hand-computed classifications at exact rational boundaries on
//!    instances too large to enumerate, including the canonical
//!    `δ = 9/10, |q| = 10` case where naive flooring loses a whole item of
//!    slack.

use oct_core::conflict::{classify_pair, PairClass};
use oct_core::input::{InputSet, Instance};
use oct_core::itemset::ItemSet;
use oct_core::similarity::{Similarity, SimilarityKind};

/// `δ` as an exact fraction, alongside the `f64` handed to the instance.
#[derive(Clone, Copy)]
struct Delta {
    num: u64,
    den: u64,
}

impl Delta {
    fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

/// Exact-rational coverage test: does category `c` cover query `q` at `δ`?
/// Sets are bitmasks over a ≤16-item universe.
fn covers(kind: SimilarityKind, q: u32, c: u32, delta: Delta) -> bool {
    let qn = u64::from(q.count_ones());
    let cn = u64::from(c.count_ones());
    let inter = u64::from((q & c).count_ones());
    match kind {
        SimilarityKind::JaccardCutoff | SimilarityKind::JaccardThreshold => {
            // |q∩C| / |q∪C| ≥ num/den
            inter * delta.den >= delta.num * (qn + cn - inter)
        }
        SimilarityKind::F1Cutoff | SimilarityKind::F1Threshold => {
            // 2|q∩C| / (|q| + |C|) ≥ num/den
            2 * inter * delta.den >= delta.num * (qn + cn)
        }
        SimilarityKind::PerfectRecall => {
            // q ⊆ C with precision |q|/|C| ≥ num/den.
            (q & !c) == 0 && qn * delta.den >= delta.num * cn
        }
        SimilarityKind::Exact => q == c,
    }
}

/// Can the pair sit on one branch — some `C_lo ⊆ C_hi` (within the union;
/// foreign items never help any measure) covering `q_lo` and `q_hi`?
fn brute_together(kind: SimilarityKind, q_hi: u32, q_lo: u32, delta: Delta, universe: u32) -> bool {
    let mut c_hi = universe;
    loop {
        if covers(kind, q_hi, c_hi, delta) {
            // Enumerate the subsets of c_hi (including c_hi itself — one
            // category may serve both queries).
            let mut c_lo = c_hi;
            loop {
                if covers(kind, q_lo, c_lo, delta) {
                    return true;
                }
                if c_lo == 0 {
                    break;
                }
                c_lo = (c_lo - 1) & c_hi;
            }
        }
        if c_hi == 0 {
            return false;
        }
        c_hi -= 1;
    }
}

/// Can the pair sit on different branches — disjoint `C_1, C_2` (all branch
/// bounds are 1, so no item may appear on both) covering `q_hi` and `q_lo`?
fn brute_separately(
    kind: SimilarityKind,
    q_hi: u32,
    q_lo: u32,
    delta: Delta,
    universe: u32,
) -> bool {
    let mut c1 = universe;
    loop {
        if covers(kind, q_hi, c1, delta) {
            let rest = universe & !c1;
            let mut c2 = rest;
            loop {
                if covers(kind, q_lo, c2, delta) {
                    return true;
                }
                if c2 == 0 {
                    break;
                }
                c2 = (c2 - 1) & rest;
            }
        }
        if c1 == 0 {
            return false;
        }
        c1 -= 1;
    }
}

/// Builds a two-set instance: `q1` is items `0..q1_size`, `q2` overlaps it
/// in exactly `inter` items. Returns the instance plus both bitmasks.
fn two_set_instance(
    q1_size: usize,
    q2_size: usize,
    inter: usize,
    similarity: Similarity,
) -> (Instance, u32, u32) {
    assert!(inter >= 1 && inter <= q2_size && q2_size <= q1_size);
    let union = q1_size + q2_size - inter;
    let q1: Vec<u32> = (0..q1_size as u32).collect();
    let q2: Vec<u32> = ((q1_size - inter) as u32..(q1_size - inter + q2_size) as u32).collect();
    let q1_mask = (1u32 << q1_size) - 1;
    let q2_mask = ((1u32 << q2_size) - 1) << (q1_size - inter);
    let sets = vec![
        InputSet::new(ItemSet::new(q1), 1.0),
        InputSet::new(ItemSet::new(q2), 1.0),
    ];
    let instance = Instance::new(union as u32, sets, similarity);
    (instance, q1_mask, q2_mask)
}

/// Classifies the pair the way `analyze` would: hi = lower rank.
fn classify(instance: &Instance) -> PairClass {
    let ranks = instance.ranks();
    let (hi, lo) = if ranks[0] <= ranks[1] { (0, 1) } else { (1, 0) };
    let inter = instance.sets[0]
        .items
        .intersection_size(&instance.sets[1].items);
    classify_pair(instance, hi, lo, inter, inter)
}

#[test]
fn classify_pair_matches_brute_force_on_small_instances() {
    // Grid of deltas that includes exact boundaries: δ·|q| integral for
    // |q| ≤ 5 (1/2·2, 1/2·4, 2/3·3, 3/4·4, 4/5·5, 3/5·5, 1·q).
    let deltas = [
        Delta { num: 1, den: 2 },
        Delta { num: 3, den: 5 },
        Delta { num: 2, den: 3 },
        Delta { num: 3, den: 4 },
        Delta { num: 4, den: 5 },
        Delta { num: 1, den: 1 },
    ];
    let kinds = [
        SimilarityKind::JaccardThreshold,
        SimilarityKind::F1Threshold,
        SimilarityKind::PerfectRecall,
    ];
    let mut cases = 0usize;
    for q1_size in 2..=5usize {
        for q2_size in 1..=q1_size {
            for inter in 1..=q2_size {
                if q2_size == q1_size && inter == q1_size {
                    continue; // identical sets
                }
                for kind in kinds {
                    for delta in deltas {
                        let similarity = Similarity::new(kind, delta.as_f64());
                        let (instance, q1_mask, q2_mask) =
                            two_set_instance(q1_size, q2_size, inter, similarity);
                        let universe = q1_mask | q2_mask;
                        // Ranks put the larger set higher; the brute force
                        // must use the same orientation.
                        let got = classify(&instance);
                        let expected = PairClass {
                            can_together: brute_together(kind, q1_mask, q2_mask, delta, universe),
                            can_separately: brute_separately(
                                kind, q1_mask, q2_mask, delta, universe,
                            ),
                        };
                        assert_eq!(
                            got, expected,
                            "kind={kind:?} δ={}/{} |q1|={q1_size} |q2|={q2_size} I={inter}",
                            delta.num, delta.den
                        );
                        cases += 1;
                    }
                }
                // Exact has no δ; check it once per shape.
                let (instance, q1_mask, q2_mask) =
                    two_set_instance(q1_size, q2_size, inter, Similarity::exact());
                let universe = q1_mask | q2_mask;
                let delta = Delta { num: 1, den: 1 };
                let got = classify(&instance);
                let expected = PairClass {
                    can_together: brute_together(
                        SimilarityKind::Exact,
                        q1_mask,
                        q2_mask,
                        delta,
                        universe,
                    ),
                    can_separately: brute_separately(
                        SimilarityKind::Exact,
                        q1_mask,
                        q2_mask,
                        delta,
                        universe,
                    ),
                };
                assert_eq!(
                    got, expected,
                    "Exact |q1|={q1_size} |q2|={q2_size} I={inter}"
                );
                cases += 1;
            }
        }
    }
    assert!(cases > 500, "grid unexpectedly small: {cases}");
}

/// δ = 9/10, |q1| = |q2| = 10, I = 2. In floating point
/// `10·(1−0.9) = 0.9999999999999998`, so a naive floor computes a recall
/// slack of 0 on each side and declares the pair inseparable; the true
/// rational slack is ⌊10·1/10⌋ = 1 per side, and 1 + 1 ≥ I = 2, so the pair
/// CAN be covered separately. Together needs y2 = ⌈9⌉ − 2 = 7 foreign items
/// absorbed, far over the 10·(1/10)/(9/10) = 10/9 allowance.
#[test]
fn jaccard_floor_tolerance_at_delta_nine_tenths() {
    let q1: Vec<u32> = (0..10).collect();
    let q2: Vec<u32> = (8..18).collect();
    let sets = vec![
        InputSet::new(ItemSet::new(q1), 1.0),
        InputSet::new(ItemSet::new(q2), 1.0),
    ];
    let instance = Instance::new(18, sets, Similarity::jaccard_threshold(0.9));
    let got = classify(&instance);
    assert_eq!(
        got,
        PairClass {
            can_together: false,
            can_separately: true,
        }
    );
}

/// Same shape at the exact together-boundary: δ = 4/5, |q1| = |q2| = 5,
/// I = 4. `⌈δ·5⌉ = 4` exactly (naive fp may see `4.000000000000001` and round
/// up to 5), so y2 = 0 and the pair fits on one branch; the separate slack is
/// ⌊5/5⌋ = 1 per side, 2 < I = 4, so separately is impossible.
#[test]
fn jaccard_ceil_tolerance_at_delta_four_fifths() {
    let q1: Vec<u32> = (0..5).collect();
    let q2: Vec<u32> = (1..6).collect();
    let sets = vec![
        InputSet::new(ItemSet::new(q1), 1.0),
        InputSet::new(ItemSet::new(q2), 1.0),
    ];
    let instance = Instance::new(6, sets, Similarity::jaccard_threshold(0.8));
    let got = classify(&instance);
    assert_eq!(
        got,
        PairClass {
            can_together: true,
            can_separately: false,
        }
    );
}

/// F1 at an integral minimal-cover boundary: δ = 9/10, |q| = 11 gives
/// s = ⌈δ|q|/(2−δ)⌉ = ⌈99/11⌉ = 9 exactly, so each side may shed
/// 11 − 9 = 2 items; with I = 4 = 2 + 2 the pair is exactly separable.
/// Together would need y2 = 9 − 4 = 5 ≤ 2·11·(1/9)/(10/9)… = 22/9 ≈ 2.44 —
/// impossible.
#[test]
fn f1_ceil_tolerance_at_integral_minimal_cover() {
    let q1: Vec<u32> = (0..11).collect();
    let q2: Vec<u32> = (7..18).collect();
    let sets = vec![
        InputSet::new(ItemSet::new(q1), 1.0),
        InputSet::new(ItemSet::new(q2), 1.0),
    ];
    let instance = Instance::new(18, sets, Similarity::f1_threshold(0.9));
    let got = classify(&instance);
    assert_eq!(
        got,
        PairClass {
            can_together: false,
            can_separately: true,
        }
    );
}

/// Perfect recall exactly at the precision boundary: |q1| = 9, union = 10,
/// δ = 9/10 — the umbrella category q1 ∪ q2 has precision 9/10 = δ exactly,
/// so together must hold (EPS guards the equality); recall 1 forbids
/// splitting shared items, so separately is impossible.
#[test]
fn perfect_recall_at_exact_precision_boundary() {
    let q1: Vec<u32> = (0..9).collect();
    let q2: Vec<u32> = (7..10).collect();
    let sets = vec![
        InputSet::new(ItemSet::new(q1), 1.0),
        InputSet::new(ItemSet::new(q2), 1.0),
    ];
    let instance = Instance::new(10, sets, Similarity::perfect_recall(0.9));
    let got = classify(&instance);
    assert_eq!(
        got,
        PairClass {
            can_together: true,
            can_separately: false,
        }
    );
    // One item fewer in q1 (precision 8/9.11… < 9/10 for union 10) flips it.
    let q1: Vec<u32> = (0..8).collect();
    let q2: Vec<u32> = (6..10).collect();
    let sets = vec![
        InputSet::new(ItemSet::new(q1), 1.0),
        InputSet::new(ItemSet::new(q2), 1.0),
    ];
    let instance = Instance::new(10, sets, Similarity::perfect_recall(0.9));
    let got = classify(&instance);
    assert_eq!(
        got,
        PairClass {
            can_together: false,
            can_separately: false,
        }
    );
}
