//! Cross-crate workflow tests: generated data → build → diagnose →
//! reemploy → label → persist → reload → rescore, plus the TSV loader and
//! trend-weighting paths.

use oct_core::labeling;
use oct_core::persist;
use oct_core::prelude::*;
use oct_core::workflow;
use oct_datagen::loader;
use oct_datagen::trends::{windowed, RecencyScheme};
use oct_datagen::{generate, DatasetName};

#[test]
fn full_lifecycle_roundtrip() {
    let ds = generate(DatasetName::A, 0.02, Similarity::jaccard_threshold(0.85));

    // Build + reemploy. Scores are relative to the outcome's (relaxed)
    // instance, which iterate() returns alongside the tree.
    let outcome =
        workflow::iterate(&ds.instance, &CtcrConfig::default(), 3, 0.85).expect("valid relief");
    assert!(!outcome.trace.is_empty());
    assert!(outcome.result.tree.validate(&outcome.instance).is_ok());
    let covered_before = outcome.result.score.covered_count();

    // Label, persist, reload.
    let mut tree = outcome.result.tree.clone();
    labeling::apply_labels(&outcome.instance, &mut tree);
    let reloaded = persist::decode_tree(persist::encode_tree(&tree)).expect("roundtrip");
    let instance_reloaded =
        persist::decode_instance(persist::encode_instance(&outcome.instance)).expect("roundtrip");

    // Rescoring the reloaded artifacts reproduces the result exactly.
    let rescore = score_tree(&instance_reloaded, &reloaded);
    assert_eq!(rescore.covered_count(), covered_before);
    assert!((rescore.total - outcome.result.score.total).abs() < 1e-9);
}

#[test]
fn tsv_export_import_preserves_scores() {
    let ds = generate(DatasetName::B, 0.01, Similarity::jaccard_threshold(0.8));
    let text = loader::write_query_log(&ds.log);
    let parsed = loader::parse_query_log(&text).expect("own format");
    assert_eq!(parsed.queries.len(), ds.log.queries.len());
    // Rebuilding the instance from the parsed log must produce identical
    // result sets at the same relevance cutoff.
    for (a, b) in parsed.queries.iter().zip(&ds.log.queries) {
        let cut = |q: &oct_datagen::queries::RawQuery| -> Vec<u32> {
            let mut v: Vec<u32> = q
                .results
                .iter()
                .filter(|&&(_, rel)| rel >= 0.8)
                .map(|&(i, _)| i)
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(cut(a), cut(b), "query {:?}", b.text);
    }
}

#[test]
fn recency_weighting_feeds_the_builder() {
    let ds = generate(DatasetName::A, 0.02, Similarity::jaccard_threshold(0.8));
    let window = windowed(&ds.log, 90, 0.25, 11);
    let spiky = window
        .reweighted(RecencyScheme::ExponentialDecay { half_life: 7.0 })
        .expect("valid scheme");

    // Trend detection finds something, and the reweighted log still builds.
    let trends = window
        .breaking_trends(RecencyScheme::ExponentialDecay { half_life: 7.0 }, 1.5)
        .expect("valid scheme");
    assert!(!trends.is_empty(), "a quarter of queries spike late");

    let (instance, _) = oct_datagen::preprocess::build_instance(
        ds.catalog.len() as u32,
        &spiky,
        &ds.existing,
        Similarity::jaccard_threshold(0.8),
        &oct_datagen::preprocess::PreprocessConfig::default(),
    );
    let result = ctcr::run(&instance, &CtcrConfig::default());
    assert!(result.tree.validate(&instance).is_ok());
    assert!(result.score.normalized > 0.3);
}

#[test]
fn orphan_and_outlier_reports_are_consistent() {
    let ds = generate(DatasetName::E, 0.02, Similarity::perfect_recall(0.7));
    let result = ctcr::run(&ds.instance, &CtcrConfig::default());
    let orphans = workflow::orphaned_items(&ds.instance, &result.tree);
    // Every reported orphan really is in some input set but no covering
    // category.
    let index = ds.instance.inverted_index();
    for &item in orphans.items.iter().take(50) {
        assert!(
            !index[item as usize].is_empty(),
            "orphan {item} must belong to an input set"
        );
    }
    // Outlier detection over the synthetic embeddings runs and flags only
    // real categories.
    let embeddings = oct_datagen::embeddings::item_embeddings(&ds.catalog);
    for report in workflow::embedding_outliers(&result.tree, &embeddings, 4.0) {
        assert!(!result.tree.is_removed(report.category));
        assert!(report.deviation >= 4.0);
    }
}
