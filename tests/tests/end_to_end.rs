//! End-to-end pipeline tests: synthetic data generation → preprocessing →
//! algorithms → scoring, across crates.

use oct_core::prelude::*;
use oct_core::similarity::SimilarityKind;
use oct_datagen::embeddings::item_embeddings;
use oct_datagen::{generate, DatasetName};

const SCALE: f64 = 0.02;

fn all_kinds() -> [Similarity; 6] {
    [
        Similarity::jaccard_cutoff(0.7),
        Similarity::jaccard_threshold(0.7),
        Similarity::f1_cutoff(0.7),
        Similarity::f1_threshold(0.7),
        Similarity::perfect_recall(0.7),
        Similarity::exact(),
    ]
}

#[test]
fn ctcr_valid_and_bounded_on_every_variant() {
    for sim in all_kinds() {
        let ds = generate(DatasetName::A, SCALE, sim);
        let result = ctcr::run(&ds.instance, &CtcrConfig::default());
        result
            .tree
            .validate(&ds.instance)
            .unwrap_or_else(|e| panic!("{}: invalid tree: {e}", sim.kind.name()));
        assert!(
            result.score.total <= ds.instance.total_weight() + 1e-9,
            "{}: score above weight mass",
            sim.kind.name()
        );
        assert!(
            result.score.normalized > 0.0,
            "{}: nothing covered at all",
            sim.kind.name()
        );
    }
}

#[test]
fn cct_valid_and_bounded_on_every_variant() {
    for sim in all_kinds() {
        let ds = generate(DatasetName::A, SCALE, sim);
        let result = cct::run(&ds.instance, &CctConfig::default());
        result
            .tree
            .validate(&ds.instance)
            .unwrap_or_else(|e| panic!("{}: invalid tree: {e}", sim.kind.name()));
        assert!(result.score.total <= ds.instance.total_weight() + 1e-9);
    }
}

#[test]
fn exact_variant_score_equals_mis_weight() {
    // For the Exact variant the constructed tree covers exactly the
    // selected conflict-free sets, so the score must equal the MIS weight
    // (Theorem 3.1's tightness on the instance level).
    let ds = generate(DatasetName::B, SCALE, Similarity::exact());
    let result = ctcr::run(&ds.instance, &CtcrConfig::default());
    assert!(result.stats.mis_optimal, "sparse instances solve exactly");
    assert!(
        (result.score.total - result.stats.mis_weight).abs() < 1e-6,
        "score {} vs MIS weight {}",
        result.score.total,
        result.stats.mis_weight
    );
}

#[test]
fn binary_variant_covered_weight_never_exceeds_mis_weight() {
    // The MIS weight upper-bounds the weight coverable by any tree for
    // binary variants (every covered family is conflict-free).
    for sim in [
        Similarity::jaccard_threshold(0.8),
        Similarity::perfect_recall(0.8),
    ] {
        let ds = generate(DatasetName::A, SCALE, sim);
        let result = ctcr::run(&ds.instance, &CtcrConfig::default());
        assert!(
            result.score.covered_weight(&ds.instance) <= result.stats.mis_weight + 1e-6,
            "{}: covered {} > MIS bound {}",
            sim.kind.name(),
            result.score.covered_weight(&ds.instance),
            result.stats.mis_weight
        );
    }
}

#[test]
fn perfect_recall_covers_are_complete() {
    let ds = generate(DatasetName::A, SCALE, Similarity::perfect_recall(0.6));
    let result = ctcr::run(&ds.instance, &CtcrConfig::default());
    let full = result.tree.materialize();
    for (idx, cover) in result.score.per_set.iter().enumerate() {
        if cover.covered {
            let cat = cover.best_category.expect("covered set has a category");
            assert!(
                ds.instance.sets[idx]
                    .items
                    .is_subset_of(&full[cat as usize]),
                "set {idx} covered without full recall"
            );
        }
    }
}

#[test]
fn covered_sets_meet_their_thresholds() {
    let ds = generate(DatasetName::A, SCALE, Similarity::jaccard_cutoff(0.65));
    let result = ctcr::run(&ds.instance, &CtcrConfig::default());
    for (idx, cover) in result.score.per_set.iter().enumerate() {
        if cover.covered {
            assert!(
                cover.similarity + 1e-9 >= ds.instance.threshold_of(idx),
                "set {idx} covered below threshold: {}",
                cover.similarity
            );
        }
    }
}

#[test]
fn ctcr_beats_all_baselines_on_all_datasets() {
    for (name, sim) in [
        // Weighted private-style datasets at the paper's favored setting.
        (DatasetName::A, Similarity::jaccard_threshold(0.8)),
        (DatasetName::B, Similarity::jaccard_threshold(0.8)),
        // Dataset E is evaluated with Perfect-Recall in the paper (Fig 8e).
        (DatasetName::E, Similarity::perfect_recall(0.7)),
    ] {
        let ds = generate(name, SCALE, sim);
        let ctcr_score = ctcr::run(&ds.instance, &CtcrConfig::default())
            .score
            .normalized;
        let cct_score = cct::run(&ds.instance, &CctConfig::default())
            .score
            .normalized;
        let embeddings = item_embeddings(&ds.catalog);
        let ic_s = baselines::ic_s(&ds.instance, &embeddings, &BaselineConfig::default())
            .expect("datagen embeddings are dense, uniform, and finite")
            .score
            .normalized;
        let ic_q = baselines::ic_q(&ds.instance, &BaselineConfig::default())
            .expect("membership rows are self-generated and well-formed")
            .score
            .normalized;
        let et = score_tree(&ds.instance, &ds.existing).normalized;
        assert!(
            ctcr_score + 1e-9 >= cct_score.max(ic_s).max(ic_q).max(et),
            "dataset {}: CTCR {ctcr_score} vs CCT {cct_score}, IC-S {ic_s}, IC-Q {ic_q}, ET {et}",
            name.as_str()
        );
        assert!(
            cct_score + 1e-9 >= ic_s.max(ic_q),
            "dataset {}: CCT should beat item-clustering baselines",
            name.as_str()
        );
    }
}

#[test]
fn lowering_delta_never_hurts_ctcr() {
    let sim = Similarity::jaccard_threshold(0.9);
    let ds = generate(DatasetName::A, SCALE, sim);
    let mut previous = -1.0f64;
    // δ descending: each relaxation should cover at least as much weight
    // (small tolerance for heuristic wobble).
    for delta in [0.9, 0.8, 0.7, 0.6, 0.5] {
        let mut sets = ds.instance.sets.clone();
        for s in &mut sets {
            s.threshold = None;
        }
        let instance = Instance::new(
            ds.instance.num_items,
            sets,
            Similarity::jaccard_threshold(delta),
        );
        let score = ctcr::run(&instance, &CtcrConfig::default())
            .score
            .normalized;
        assert!(
            score + 0.02 >= previous,
            "δ={delta}: score {score} dropped below the stricter run's {previous}"
        );
        previous = score;
    }
}

#[test]
fn misc_category_completes_the_universe() {
    let ds = generate(DatasetName::A, SCALE, Similarity::jaccard_threshold(0.8));
    for tree in [
        ctcr::run(&ds.instance, &CtcrConfig::default()).tree,
        cct::run(&ds.instance, &CctConfig::default()).tree,
    ] {
        let full = tree.materialize();
        assert_eq!(
            full[ROOT as usize].len(),
            ds.catalog.len(),
            "root must contain every catalog item"
        );
    }
}

#[test]
fn heuristic_mis_budget_still_produces_valid_trees() {
    let ds = generate(DatasetName::A, SCALE, Similarity::jaccard_threshold(0.8));
    let config = CtcrConfig {
        mis_budget: oct_mis::SolveBudget::heuristic_only(),
        ..CtcrConfig::default()
    };
    let result = ctcr::run(&ds.instance, &config);
    assert!(result.tree.validate(&ds.instance).is_ok());
    assert!(result.score.normalized > 0.0);
}

#[test]
fn kinds_share_one_pipeline_f1_close_to_jaccard() {
    // F1 ≥ Jaccard pointwise, so at equal δ the F1-threshold variant can
    // only cover at least as much weight as the Jaccard-threshold variant
    // when run over the same sets.
    let jd = generate(DatasetName::A, SCALE, Similarity::jaccard_threshold(0.8));
    let jac = ctcr::run(&jd.instance, &CtcrConfig::default())
        .score
        .normalized;
    let mut sets = jd.instance.sets.clone();
    for s in &mut sets {
        s.threshold = None;
    }
    let f1_instance = Instance::new(
        jd.instance.num_items,
        sets,
        Similarity::new(SimilarityKind::F1Threshold, 0.8),
    );
    let f1 = ctcr::run(&f1_instance, &CtcrConfig::default())
        .score
        .normalized;
    assert!(
        f1 + 0.02 >= jac,
        "F1-threshold ({f1}) should be ≥ Jaccard-threshold ({jac}) at equal δ"
    );
}
