//! Property-based invariants over randomized `OCT` instances.

use oct_core::prelude::*;
use proptest::prelude::*;

/// Strategy: a random instance with up to `max_sets` sets over up to
/// `max_items` items.
fn arb_instance(
    max_items: u32,
    max_sets: usize,
    sim: fn(f64) -> Similarity,
) -> impl Strategy<Value = Instance> {
    let set =
        (2u32..=12).prop_flat_map(move |len| prop::collection::vec(0..max_items, len as usize));
    (
        prop::collection::vec((set, 1u32..20), 1..=max_sets),
        5u32..=9,
    )
        .prop_map(move |(raw, delta10)| {
            let sets = raw
                .into_iter()
                .map(|(items, w)| InputSet::new(ItemSet::new(items), w as f64))
                .filter(|s| !s.items.is_empty())
                .collect();
            Instance::new(max_items, sets, sim(delta10 as f64 / 10.0))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ctcr_trees_are_always_valid_jaccard(instance in arb_instance(60, 14, Similarity::jaccard_threshold)) {
        let result = ctcr::run(&instance, &CtcrConfig::default());
        prop_assert!(result.tree.validate(&instance).is_ok());
        prop_assert!(result.score.total <= instance.total_weight() + 1e-9);
        prop_assert!(result.score.total >= -1e-12);
    }

    #[test]
    fn ctcr_trees_are_always_valid_cutoff(instance in arb_instance(60, 14, Similarity::jaccard_cutoff)) {
        let result = ctcr::run(&instance, &CtcrConfig::default());
        prop_assert!(result.tree.validate(&instance).is_ok());
        // Cutoff scores are graded: every per-set similarity is in [0, 1].
        for cover in &result.score.per_set {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&cover.similarity));
        }
    }

    #[test]
    fn ctcr_trees_are_always_valid_perfect_recall(instance in arb_instance(60, 14, Similarity::perfect_recall)) {
        let result = ctcr::run(&instance, &CtcrConfig::default());
        prop_assert!(result.tree.validate(&instance).is_ok());
        // Perfect-recall covers contain their sets entirely.
        let full = result.tree.materialize();
        for (idx, cover) in result.score.per_set.iter().enumerate() {
            if cover.covered {
                let cat = cover.best_category.expect("covered");
                prop_assert!(instance.sets[idx].items.is_subset_of(&full[cat as usize]));
            }
        }
    }

    #[test]
    fn exact_score_equals_mis_weight(instance in arb_instance(40, 12, |_| Similarity::exact())) {
        let result = ctcr::run(&instance, &CtcrConfig::default());
        prop_assert!(result.tree.validate(&instance).is_ok());
        if result.stats.mis_optimal {
            prop_assert!((result.score.total - result.stats.mis_weight).abs() < 1e-6,
                "score {} vs MIS {}", result.score.total, result.stats.mis_weight);
        }
    }

    #[test]
    fn cct_trees_are_always_valid(instance in arb_instance(60, 12, Similarity::jaccard_threshold)) {
        let result = cct::run(&instance, &CctConfig::default());
        prop_assert!(result.tree.validate(&instance).is_ok());
        prop_assert!(result.score.total <= instance.total_weight() + 1e-9);
    }

    #[test]
    fn covered_sets_meet_thresholds(instance in arb_instance(50, 12, Similarity::jaccard_threshold)) {
        let result = ctcr::run(&instance, &CtcrConfig::default());
        for (idx, cover) in result.score.per_set.iter().enumerate() {
            if cover.covered {
                prop_assert!(cover.similarity + 1e-9 >= instance.threshold_of(idx));
            }
        }
    }

    #[test]
    fn root_always_contains_all_assigned_items(instance in arb_instance(50, 10, Similarity::jaccard_threshold)) {
        let result = ctcr::run(&instance, &CtcrConfig::default());
        let full = result.tree.materialize();
        // The misc stage tops the root up to the full universe.
        prop_assert_eq!(full[ROOT as usize].len() as u32, instance.num_items);
    }

    #[test]
    fn determinism(instance in arb_instance(40, 10, Similarity::jaccard_threshold)) {
        let a = ctcr::run(&instance, &CtcrConfig::default());
        let b = ctcr::run(&instance, &CtcrConfig::default());
        prop_assert_eq!(a.score.total, b.score.total);
        prop_assert_eq!(a.tree.live_categories(), b.tree.live_categories());
    }

    #[test]
    fn conflict_classification_is_rank_stable(instance in arb_instance(50, 12, Similarity::jaccard_threshold)) {
        // 2-conflicts and must-together pairs always pair a lower rank
        // value (hi) with a higher one (lo).
        let analysis = oct_core::conflict::analyze(&instance, 1, true);
        for &(hi, lo) in analysis.conflicts2.iter().chain(&analysis.must_together) {
            prop_assert!(analysis.ranks[hi as usize] < analysis.ranks[lo as usize]);
        }
        // 3-conflicts reference distinct sets.
        for t in &analysis.conflicts3 {
            prop_assert!(t[0] < t[1] && t[1] < t[2]);
        }
    }

    #[test]
    fn scoring_matches_materialized_bruteforce(instance in arb_instance(40, 8, Similarity::jaccard_cutoff)) {
        // The small-to-large aggregated scorer must agree with a naive
        // materialize-and-compare scorer.
        let result = ctcr::run(&instance, &CtcrConfig::default());
        let tree = &result.tree;
        let fast = score_tree(&instance, tree);
        let full = tree.materialize();
        for (idx, set) in instance.sets.iter().enumerate() {
            let mut best = 0.0f64;
            for cat in tree.live_categories() {
                let c = &full[cat as usize];
                let inter = set.items.intersection_size(c);
                let s = instance.similarity.score_with(
                    instance.threshold_of(idx),
                    set.items.len(),
                    c.len(),
                    inter,
                );
                best = best.max(s);
            }
            prop_assert!((fast.per_set[idx].similarity - best).abs() < 1e-9,
                "set {idx}: fast {} vs naive {best}", fast.per_set[idx].similarity);
        }
    }
}
