//! BENCH_*.json schema contract: full-suite runs produce schema-valid,
//! suite-complete documents whose non-timing fields are deterministic;
//! round-trips are lossless; and no corrupted document — bit flips,
//! truncation, garbage — ever panics the parser (mirroring the persist-v2
//! corruption style in `persist_corruption.rs`).

use std::collections::BTreeMap;

use oct_bench::perf::{compare, run_perf, BenchReport, PerfConfig, BENCH_SCHEMA_VERSION, SUITES};
use proptest::prelude::*;

/// The cheapest config that still runs every suite.
fn tiny_config() -> PerfConfig {
    PerfConfig {
        scale: 0.005,
        threads: vec![1, 2],
        reps: 2,
        warmup: 0,
        serve_connections: 2,
        serve_requests: 8,
    }
}

/// One record's non-timing fields: name, reps, threads, unit, detail bits.
type RecordProjection = (String, usize, usize, String, BTreeMap<String, u64>);
/// A report's non-timing fields: version, rev, scale, env, records.
type Projection = (
    u64,
    String,
    f64,
    BTreeMap<String, String>,
    Vec<RecordProjection>,
);

/// Everything in a report that must NOT vary between two runs of the same
/// binary: record names and their non-timing fields, plus document
/// metadata. Timing medians/MADs and throughput are excluded.
fn deterministic_projection(report: &BenchReport) -> Projection {
    let records = report
        .benchmarks
        .iter()
        .map(|(name, r)| {
            let detail: BTreeMap<String, u64> = r
                .detail
                .iter()
                .map(|(k, &v)| (k.clone(), v.to_bits()))
                .collect();
            (name.clone(), r.reps, r.threads, r.unit.clone(), detail)
        })
        .collect();
    (
        report.schema_version,
        report.git_rev.clone(),
        report.scale,
        report.env.clone(),
        records,
    )
}

#[test]
fn run_perf_covers_every_suite_and_roundtrips() {
    let report = run_perf(&tiny_config());
    assert_eq!(report.schema_version, BENCH_SCHEMA_VERSION);
    assert!(
        report.covers_all_suites(),
        "suites present: {:?}, required: {SUITES:?}",
        report.suites()
    );
    // The thread sweep produced per-thread records.
    for name in [
        "conflict/analyze/t1",
        "conflict/analyze/t2",
        "matrix/fill/t1",
        "matrix/fill/t2",
        "score/tree/t1",
        "score/tree/t2",
        "mis/solve",
        "cluster/nn_chain",
        "persist/roundtrip",
        "serve/latency_p50",
        "serve/throughput",
    ] {
        assert!(report.benchmarks.contains_key(name), "missing {name}");
    }
    // Spans from the embedded instrumented pipeline run.
    let pipeline = report.pipeline.as_ref().expect("pipeline embedded");
    assert!(pipeline.span("ctcr").is_some());
    assert!(pipeline.span("cct").is_some());
    // Timings are sane: non-negative medians, requested rep counts.
    for (name, record) in &report.benchmarks {
        assert!(record.median >= 0.0, "{name} median {}", record.median);
        assert!(record.mad >= 0.0, "{name} mad {}", record.mad);
        assert_eq!(record.reps, 2, "{name}");
    }
    // Lossless JSON round-trip.
    let text = report.to_json();
    let back = BenchReport::from_json(&text).expect("schema-valid document");
    assert_eq!(back, report);
}

#[test]
fn non_timing_fields_are_deterministic_across_runs() {
    let config = tiny_config();
    let a = run_perf(&config);
    let b = run_perf(&config);
    assert_eq!(
        deterministic_projection(&a),
        deterministic_projection(&b),
        "non-timing fields must be a pure function of the config"
    );
    // A report never gates against itself: every delta is exactly zero.
    // (The cross-run no-gate contract is exercised sequentially by
    // ci/bench_smoke.sh; under the parallel test harness cross-run wall
    // times are too contended to assert on.)
    let comparison = compare(&a, &a, Some(20.0));
    assert_eq!(comparison.gated, 0, "{}", comparison.render());
    assert!(comparison.rows.iter().all(|r| !r.regressed));
}

#[test]
fn forward_compat_unknown_keys_and_missing_optionals() {
    // A future writer adds keys everywhere; this reader must ignore them.
    let text = r#"{
        "bench_schema_version": 1,
        "git_rev": "cafe",
        "flux_capacitor": {"charged": true},
        "benchmarks": {
            "conflict/analyze/t1": {
                "median": 0.25,
                "p75": 0.3,
                "detail": {"conflicts2": 12.0}
            }
        },
        "pipeline": {"counters": {"x": 1}, "not_yet_invented": 9}
    }"#;
    let report = BenchReport::from_json(text).expect("unknown keys ignored");
    assert_eq!(report.git_rev, "cafe");
    assert_eq!(report.scale, 0.0, "missing scale defaults");
    assert!(report.env.is_empty(), "missing env defaults");
    let record = &report.benchmarks["conflict/analyze/t1"];
    assert_eq!(record.median, 0.25);
    assert_eq!(record.mad, 0.0);
    assert_eq!(record.reps, 1);
    assert_eq!(record.threads, 1);
    assert_eq!(record.unit, "s");
    assert_eq!(record.detail["conflicts2"], 12.0);
    let pipeline = report.pipeline.expect("pipeline parsed");
    assert_eq!(pipeline.counter("x"), Some(1));

    // Minimal document: version only.
    let minimal = BenchReport::from_json("{\"bench_schema_version\": 3}").expect("minimal");
    assert_eq!(minimal.schema_version, 3);
    assert!(minimal.benchmarks.is_empty());
    assert!(minimal.pipeline.is_none());
}

#[test]
fn malformed_documents_yield_typed_errors() {
    for bad in [
        "",
        "not json at all",
        "{\"bench_schema_version\": }",
        "{}",                              // missing version
        "{\"bench_schema_version\": -1}",  // negative version
        "{\"bench_schema_version\": 1.5}", // fractional version
        "{\"bench_schema_version\": 1, \"git_rev\": 7}",
        "{\"bench_schema_version\": 1, \"scale\": \"big\"}",
        "{\"bench_schema_version\": 1, \"env\": {\"os\": 1}}",
        "{\"bench_schema_version\": 1, \"benchmarks\": {\"a\": {\"median\": \"x\"}}}",
        "{\"bench_schema_version\": 1, \"pipeline\": {\"spans\": {\"s\": {}}}}",
    ] {
        let err = BenchReport::from_json(bad).expect_err(&format!("accepted {bad:?}"));
        // The error is a typed value with a human-readable rendering — the
        // contract callers (CLI, CI) rely on.
        assert!(!err.to_string().is_empty());
    }
}

fn valid_document() -> String {
    let mut report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        git_rev: "0123abcd4567".to_owned(),
        scale: 0.05,
        ..BenchReport::default()
    };
    report.env.insert("os".to_owned(), "linux".to_owned());
    report.benchmarks.insert(
        "mis/solve".to_owned(),
        oct_bench::perf::BenchRecord {
            median: 0.0025,
            mad: 0.0001,
            reps: 5,
            threads: 1,
            unit: "s".to_owned(),
            detail: [("selected".to_owned(), 17.0)].into_iter().collect(),
        },
    );
    report.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(196))]

    #[test]
    fn corrupted_bench_json_never_panics(
        flips in prop::collection::vec((0usize..4096, 0u32..8), 1..6)
    ) {
        let original = valid_document().into_bytes();
        let mut corrupted = original.clone();
        for &(pos, bit) in &flips {
            let pos = pos % corrupted.len();
            corrupted[pos] ^= 1u8 << bit;
        }
        let intact = corrupted == original; // flips may cancel pairwise
        // Corrupt bytes may no longer be UTF-8; both layers must degrade
        // to a typed error, never a panic.
        match String::from_utf8(corrupted) {
            Ok(text) => {
                let outcome = BenchReport::from_json(&text);
                if intact {
                    prop_assert!(outcome.is_ok(), "pristine document rejected");
                }
            }
            Err(_) => prop_assert!(!intact),
        }
    }

    #[test]
    fn truncated_bench_json_never_panics(cut in 0usize..2048) {
        let original = valid_document();
        let cut = cut % original.len();
        // Truncate on a char boundary to stay a &str.
        let mut end = cut;
        while !original.is_char_boundary(end) {
            end -= 1;
        }
        let truncated = &original[..end];
        // Any cut that removes more than trailing whitespace must surface
        // as a typed error (cutting only the final newline is still a
        // complete document).
        if truncated.trim_end() != original.trim_end() {
            prop_assert!(BenchReport::from_json(truncated).is_err());
        }
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let garbage = String::from_utf8_lossy(&bytes);
        let _ = BenchReport::from_json(&garbage);
    }
}
