//! Property: no corrupted byte stream — bit flips, truncation, garbage —
//! ever makes the persistence decoders panic. Corruption either cancels out
//! exactly (the same bit flipped twice) or surfaces as a typed
//! [`DecodeError`].

use bytes::Bytes;
use oct_core::persist::{self, Checkpoint, TraceEntry};
use oct_core::prelude::*;
use proptest::prelude::*;

fn sample_instance() -> Instance {
    Instance::new(
        8,
        vec![
            InputSet::new(ItemSet::new(vec![0, 1, 2]), 3.0).with_label("shoes".to_owned()),
            InputSet::new(ItemSet::new(vec![2, 3, 4]), 1.5),
            InputSet::new(ItemSet::new(vec![5, 6, 7]), 2.0).with_threshold(0.75),
        ],
        Similarity::jaccard_threshold(0.8),
    )
}

fn sample_encodings() -> Vec<(&'static str, Vec<u8>)> {
    let instance = sample_instance();
    let result = ctcr::run(&instance, &CtcrConfig::default());
    let checkpoint = Checkpoint {
        rounds_done: 2,
        finished: false,
        best_round: 1,
        best_instance: instance.clone(),
        current_instance: instance.clone(),
        trace: vec![
            TraceEntry {
                covered: 1,
                score: 0.5,
                relaxed: 2,
            },
            TraceEntry {
                covered: 2,
                score: 0.75,
                relaxed: 1,
            },
        ],
    };
    vec![
        ("tree", persist::encode_tree(&result.tree).to_vec()),
        ("instance", persist::encode_instance(&instance).to_vec()),
        (
            "checkpoint",
            persist::encode_checkpoint(&checkpoint).to_vec(),
        ),
    ]
}

/// Decodes `raw` with the decoder matching `kind`; only the panic/no-panic
/// and `Ok`/`Err` outcome matters here.
fn decode_any(kind: &str, raw: Vec<u8>) -> bool {
    let buf = Bytes::from(raw);
    match kind {
        "tree" => persist::decode_tree(buf).is_ok(),
        "instance" => persist::decode_instance(buf).is_ok(),
        "checkpoint" => persist::decode_checkpoint(buf).is_ok(),
        other => panic!("unknown encoding kind {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bit_flipped_encodings_error_instead_of_panicking(
        flips in prop::collection::vec((0usize..4096, 0u32..8), 1..6)
    ) {
        for (kind, original) in sample_encodings() {
            let mut corrupted = original.clone();
            for &(pos, bit) in &flips {
                let pos = pos % corrupted.len();
                corrupted[pos] ^= 1u8 << bit;
            }
            let intact = corrupted == original; // flips may cancel pairwise
            let ok = decode_any(kind, corrupted);
            prop_assert_eq!(
                ok, intact,
                "{} decode must fail iff the bytes actually changed", kind
            );
        }
    }

    #[test]
    fn truncated_encodings_error_instead_of_panicking(cut in 0usize..4096) {
        for (kind, original) in sample_encodings() {
            let cut = cut % original.len(); // strictly shorter than original
            let truncated = original[..cut].to_vec();
            prop_assert!(
                !decode_any(kind, truncated),
                "{} decode accepted a {}-byte prefix", kind, cut
            );
        }
    }

    #[test]
    fn random_garbage_errors_instead_of_panicking(
        raw in prop::collection::vec(0u32..256, 0..256)
    ) {
        let raw: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        for kind in ["tree", "instance", "checkpoint"] {
            // Random bytes essentially never carry a valid magic + checksum.
            prop_assert!(!decode_any(kind, raw.clone()), "{} accepted garbage", kind);
        }
    }
}
