//! Differential properties for the streaming engine: applying any valid
//! delta sequence incrementally must produce bit-identical trees to a
//! from-scratch batch rerun, and a checkpoint/resume split anywhere in the
//! stream must not change the outcome.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use oct_core::incremental::{DeltaBatch, SetDelta, StreamConfig, StreamEngine};
use oct_core::input::InputSet;
use oct_core::itemset::ItemSet;
use oct_core::persist;
use oct_core::similarity::Similarity;
use proptest::prelude::*;

const ITEMS: u32 = 24;
const IDS: u64 = 12;

/// Raw op: (set id, items, weight, kind). `kind == 2` asks for a retire;
/// anything else is an upsert. Retires of absent sets are rewritten into
/// upserts below so every generated batch is valid by construction.
type RawOp = (u64, Vec<u32>, u32, u8);

fn arb_ops() -> impl Strategy<Value = Vec<Vec<RawOp>>> {
    prop::collection::vec(
        prop::collection::vec(
            (
                0u64..IDS,
                prop::collection::vec(0u32..ITEMS, 2..8),
                1u32..50,
                0u8..3,
            ),
            1..6,
        ),
        1..6,
    )
}

/// Rewrites the raw ops into valid delta batches, tracking liveness the
/// same way the engine's own all-or-nothing validation does (sequentially
/// within a batch).
fn build_batches(ops: &[Vec<RawOp>]) -> Vec<DeltaBatch> {
    let mut live: HashSet<u64> = HashSet::new();
    ops.iter()
        .map(|batch| {
            let deltas = batch
                .iter()
                .map(|(id, items, weight, kind)| {
                    if *kind == 2 && live.contains(id) {
                        live.remove(id);
                        SetDelta::retire(*id)
                    } else {
                        live.insert(*id);
                        SetDelta::upsert(
                            *id,
                            InputSet::new(ItemSet::new(items.clone()), f64::from(*weight)),
                        )
                    }
                })
                .collect();
            DeltaBatch::new(deltas)
        })
        .collect()
}

fn config(checkpoint: Option<std::path::PathBuf>) -> StreamConfig {
    StreamConfig {
        threads: 1,
        checkpoint,
        ..StreamConfig::new(ITEMS, Similarity::jaccard_threshold(0.6))
    }
}

/// A unique scratch path per proptest case (cases run in one process).
fn scratch() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("oct-stream-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{}.ckpt", NEXT.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every batch the incremental tree equals a from-scratch rerun
    /// over the accumulated state, byte for byte.
    #[test]
    fn incremental_equals_batch_rerun(ops in arb_ops()) {
        let mut engine = StreamEngine::new(config(None));
        for (i, batch) in build_batches(&ops).iter().enumerate() {
            let incremental = engine.apply_batch(batch).expect("valid by construction");
            let rerun = engine.batch_rerun();
            let (a, b) = (
                persist::encode_tree(&incremental.tree),
                persist::encode_tree(&rerun.tree),
            );
            prop_assert_eq!(
                a.as_ref(),
                b.as_ref(),
                "divergence after batch {} ({} live sets)",
                i + 1,
                incremental.stats.live_sets
            );
            prop_assert_eq!(incremental.score.normalized, rerun.score.normalized);
        }
    }

    /// Killing the process after any prefix of the stream and resuming from
    /// the checkpoint yields the same final tree as an uninterrupted run.
    #[test]
    fn resume_after_any_prefix_is_bit_identical(
        ops in arb_ops(),
        split_seed in 0usize..100,
    ) {
        let batches = build_batches(&ops);
        let split = split_seed % batches.len();

        let mut uninterrupted = StreamEngine::new(config(None));
        let mut expect = None;
        for batch in &batches {
            expect = Some(uninterrupted.apply_batch(batch).expect("valid"));
        }

        let ckpt = scratch();
        let mut first = StreamEngine::new(config(Some(ckpt.clone())));
        for batch in &batches[..split] {
            first.apply_batch(batch).expect("valid");
        }
        // Simulated kill -9: the engine is dropped with no finalization;
        // only the per-batch checkpoint survives.
        drop(first);
        let (mut second, restored) =
            StreamEngine::resume(config(Some(ckpt.clone()))).expect("resume");
        prop_assert_eq!(second.applied_batches() as usize, split);
        prop_assert_eq!(restored.is_some(), split > 0);
        let mut resumed = restored;
        for batch in &batches[split..] {
            resumed = Some(second.apply_batch(batch).expect("valid"));
        }

        let expect = expect.expect("at least one batch");
        let resumed = resumed.expect("at least one batch");
        let (a, b) = (
            persist::encode_tree(&expect.tree),
            persist::encode_tree(&resumed.tree),
        );
        prop_assert_eq!(a.as_ref(), b.as_ref(), "resume at {} diverged", split);
        prop_assert_eq!(expect.stats, resumed.stats);
        let _ = std::fs::remove_file(&ckpt);
    }
}
