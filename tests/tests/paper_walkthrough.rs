//! Cross-crate checks of every worked example in the paper: Figures 2, 4,
//! 5, and 6, plus the hardness-context sanity claims of §5.3.

use oct_core::input::figure2_instance;
use oct_core::prelude::*;

/// Figure 2 / Example 2.1: the Perfect-Recall optimum at δ = 0.8 covers
/// q1, q2, q3 for a score of 4.
#[test]
fn figure2_perfect_recall_optimum() {
    let instance = figure2_instance(Similarity::perfect_recall(0.8));
    let result = ctcr::run(&instance, &CtcrConfig::default());
    assert!((result.score.total - 4.0).abs() < 1e-9);
    let covered: Vec<bool> = result.score.per_set.iter().map(|c| c.covered).collect();
    assert_eq!(covered, vec![true, true, true, false]);
    result.tree.validate(&instance).expect("valid");
}

/// Figure 2 / Example 2.2: the cutoff-Jaccard optimum at δ = 0.65 covers
/// everything with total 2·1 + 1·1 + 1·(3/4) + 1·(2/3) = 4 + 5/12.
#[test]
fn figure2_cutoff_jaccard_t2_score_is_achievable() {
    let instance = figure2_instance(Similarity::jaccard_cutoff(0.65));
    // Build T2 by hand and score it — the optimum claimed by the paper.
    let mut t2 = CategoryTree::new();
    let c1 = t2.add_category(ROOT);
    let c2 = t2.add_category(ROOT);
    let c3 = t2.add_category(c1);
    let c4 = t2.add_category(c1);
    t2.assign_items(c3, [0, 1]);
    t2.assign_items(c4, [2, 3, 4]);
    t2.assign_items(c2, [5, 6, 7, 8]);
    let manual = score_tree(&instance, &t2);
    let expected = 2.0 + 1.0 + 0.75 + 2.0 / 3.0;
    assert!((manual.total - expected).abs() < 1e-9);

    // CTCR should get close to (or match) the optimum.
    let result = ctcr::run(&instance, &CtcrConfig::default());
    result.tree.validate(&instance).expect("valid");
    assert!(
        result.score.total + 1e-9 >= 0.85 * expected,
        "CTCR score {} too far from optimum {expected}",
        result.score.total
    );
}

/// Figure 4: the Exact variant over the Figure 2 input. Three 2-conflicts;
/// the optimal IS is {q1, q2} with weight 3; the tree covers it exactly.
#[test]
fn figure4_exact_walkthrough() {
    let instance = figure2_instance(Similarity::exact());
    let analysis = oct_core::conflict::analyze(&instance, 1, false);
    assert_eq!(analysis.conflicts2.len(), 3);
    let result = ctcr::run(&instance, &CtcrConfig::default());
    assert!(result.stats.mis_optimal);
    assert!((result.score.total - 3.0).abs() < 1e-9);
}

/// Figure 5: Perfect-Recall at δ = 0.61 with two 3-conflicts; the optimum
/// drops only the lightest set (weight 1 of 8 total).
#[test]
fn figure5_hypergraph_walkthrough() {
    let sets = vec![
        InputSet::new(ItemSet::new(vec![0, 2, 3, 4, 5]), 3.0).with_label("q1"),
        InputSet::new(ItemSet::new(vec![0, 1]), 1.0).with_label("q2"),
        InputSet::new(ItemSet::new(vec![1, 6, 7]), 2.0).with_label("q3"),
        InputSet::new(ItemSet::new(vec![0, 8, 9]), 2.0).with_label("q4"),
    ];
    let instance = Instance::new(10, sets, Similarity::perfect_recall(0.61));
    let analysis = oct_core::conflict::analyze(&instance, 1, true);
    assert!(analysis.conflicts2.is_empty());
    assert_eq!(analysis.conflicts3.len(), 2);
    let result = ctcr::run(&instance, &CtcrConfig::default());
    assert!((result.score.total - 7.0).abs() < 1e-9);
    assert!(!result.score.per_set[1].covered, "q2 is the sacrifice");
}

/// Figure 6-style walkthrough: threshold Jaccard δ = 0.6 with no conflicts;
/// duplicates get partitioned greedily and the intermediate-category stage
/// recombines them so every set is covered.
#[test]
fn figure6_intermediates_complete_coverage() {
    let sets = vec![
        InputSet::new(ItemSet::new(vec![0, 1, 2, 5]), 2.0),
        InputSet::new(ItemSet::new(vec![0, 1]), 1.0),
        InputSet::new(ItemSet::new(vec![0, 1, 2, 3, 4]), 3.0),
    ];
    let instance = Instance::new(6, sets, Similarity::jaccard_threshold(0.6));
    let result = ctcr::run(&instance, &CtcrConfig::default());
    assert_eq!(result.stats.conflicts2, 0);
    assert!(
        (result.score.normalized - 1.0).abs() < 1e-9,
        "all three sets coverable: {:?}",
        result.score.per_set
    );
}

/// §5.3's headline observation: CTCR's normalized score never dropped
/// below 0.5 in the paper's experiments. Check it holds on our synthetic
/// datasets at the paper's favored setting (threshold Jaccard, δ = 0.8).
#[test]
fn ctcr_never_below_half_at_favored_setting() {
    for name in [
        oct_datagen::DatasetName::A,
        oct_datagen::DatasetName::B,
        oct_datagen::DatasetName::E,
    ] {
        let ds = oct_datagen::generate(name, 0.02, Similarity::jaccard_threshold(0.8));
        let result = ctcr::run(&ds.instance, &CtcrConfig::default());
        assert!(
            result.score.normalized >= 0.5,
            "dataset {}: {}",
            name.as_str(),
            result.score.normalized
        );
    }
}

/// The Exact-variant insight of §5.3: Exact scores can rival Perfect-Recall
/// scores at moderate thresholds because the MIS is solved optimally.
#[test]
fn exact_variant_competitive_with_perfect_recall() {
    let exact_ds = oct_datagen::generate(oct_datagen::DatasetName::A, 0.02, Similarity::exact());
    let exact = ctcr::run(&exact_ds.instance, &CtcrConfig::default());
    assert!(exact.stats.mis_optimal);
    let pr_ds = oct_datagen::generate(
        oct_datagen::DatasetName::A,
        0.02,
        Similarity::perfect_recall(0.95),
    );
    let pr = ctcr::run(&pr_ds.instance, &CtcrConfig::default());
    assert!(
        exact.score.normalized + 0.15 >= pr.score.normalized,
        "Exact ({}) should be near PR at high δ ({})",
        exact.score.normalized,
        pr.score.normalized
    );
}
