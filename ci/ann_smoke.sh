#!/usr/bin/env bash
# ANN candidate-generation smoke test:
#   * `octree index` persists the deterministic HNSW index for a built
#     tree — two builds are byte-identical (seeded level assignment plus
#     the checksummed v2 persist framing leave nothing to chance);
#   * offline `octree navigate` agrees with the exhaustive-beam reference
#     above a recall floor, and is byte-identical across runs;
#   * `NAVIGATE k items=...` served through the router over a replicated
#     fleet returns the same calibrated top-k on every run and on every
#     replica, and clears the same recall floor against the offline
#     exhaustive reference.
set -euo pipefail
cd "$(dirname "$0")/.."

OCTREE=${OCTREE:-target/release/octree}
SCALE=${SCALE:-0.01}
K=5
VARIANT=(--variant cutoff-jaccard --delta 0.1)
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in ${PIDS+"${PIDS[@]}"}; do kill -9 "$pid" 2> /dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT
fail() { echo "ann smoke: $*"; exit 1; }

if [[ ! -x "$OCTREE" ]]; then
    cargo build --release -p oct-cli --bin octree
fi

"$OCTREE" export --dataset A --scale "$SCALE" --out "$WORK/q.tsv" > "$WORK/export.txt"
ITEMS=$(grep -o 'use --items [0-9]*' "$WORK/export.txt" | grep -o '[0-9]*$')
"$OCTREE" build --log "$WORK/q.tsv" --items "$ITEMS" --labels --out "$WORK/a.oct" > /dev/null

# The query: the first logged query's item ids — guaranteed to overlap
# real categories of the built tree.
QI=$(awk -F'\t' 'NR==2 {n=split($3,parts,","); ids="";
    for (i=1; i<=n; i++) {split(parts[i],kv,":"); ids=ids (i>1?",":"") kv[1]}
    print ids}' "$WORK/q.tsv")
[[ -n "$QI" ]] || fail "could not extract query items from the log"

# Deterministic index persistence: two builds, byte-identical files.
"$OCTREE" index --tree "$WORK/a.oct" --out "$WORK/a1.ann" > "$WORK/index.txt"
"$OCTREE" index --tree "$WORK/a.oct" --out "$WORK/a2.ann" > /dev/null
[[ -s "$WORK/a1.ann" ]] || fail "index wrote an empty file"
grep -q 'indexed' "$WORK/index.txt" || fail "index printed no summary"
cmp -s "$WORK/a1.ann" "$WORK/a2.ann" || fail "index builds are not byte-identical"
echo "ann smoke: persisted index is byte-identical across builds"

# Offline navigate: exhaustive-beam reference vs the default beam, plus
# run-to-run determinism.
"$OCTREE" navigate --tree "$WORK/a.oct" --items "$QI" --k "$K" --ef 100000 \
    "${VARIANT[@]}" > "$WORK/exact.txt"
"$OCTREE" navigate --tree "$WORK/a.oct" --items "$QI" --k "$K" \
    "${VARIANT[@]}" > "$WORK/approx.txt"
"$OCTREE" navigate --tree "$WORK/a.oct" --items "$QI" --k "$K" \
    "${VARIANT[@]}" > "$WORK/approx2.txt"
cmp -s "$WORK/approx.txt" "$WORK/approx2.txt" \
    || fail "offline navigate is not deterministic"
EXACT_N=$(wc -l < "$WORK/exact.txt")
[[ "$EXACT_N" -ge 1 ]] || { cat "$WORK/exact.txt"; fail "exhaustive reference found no covers"; }
FLOOR=$(((EXACT_N * 3 + 4) / 5)) # ceil(0.6 * n): the recall floor
overlap() { # overlap <result file> — categories shared with the reference
    local hits=0 cat
    while read -r cat _; do
        if awk -v c="$cat" '$1 == c {found=1} END {exit !found}' "$WORK/exact.txt"; then
            hits=$((hits + 1))
        fi
    done < "$1"
    echo "$hits"
}
HITS=$(overlap "$WORK/approx.txt")
[[ "$HITS" -ge "$FLOOR" ]] \
    || fail "offline recall $HITS/$EXACT_N below the floor $FLOOR"
echo "ann smoke: offline top-$K recall $HITS/$EXACT_N (floor $FLOOR)"

# A replicated fleet behind the router, serving under the same variant.
start_backend() {
    local name=$1 addr="" pid="" attempt
    for attempt in $(seq 1 20); do
        "$OCTREE" serve --tree "$WORK/a.oct" --addr 127.0.0.1:0 --workers 2 \
            --queue 16 "${VARIANT[@]}" > "$WORK/$name.log" 2>&1 &
        pid=$!
        PIDS+=("$pid")
        for _ in $(seq 1 50); do
            addr=$(grep -o 'listening on [0-9.:]*' "$WORK/$name.log" 2> /dev/null \
                | head -n1 | awk '{print $3}') || true
            [[ -n "$addr" ]] && break
            kill -0 "$pid" 2> /dev/null || break
            sleep 0.1
        done
        [[ -n "$addr" ]] && break
        sleep 0.2
    done
    [[ -n "$addr" ]] || { cat "$WORK/$name.log"; fail "replica $name never came up"; }
    eval "ADDR_$name=\$addr"
}
start_backend r0
start_backend r1

"$OCTREE" router --shards "$ADDR_r0,$ADDR_r1" --addr 127.0.0.1:0 \
    > "$WORK/router.log" 2>&1 &
PIDS+=("$!")
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(grep -o 'listening on [0-9.:]*' "$WORK/router.log" 2> /dev/null \
        | head -n1 | awk '{print $3}') || true
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { cat "$WORK/router.log"; fail "router never came up"; }

LINE="NAVIGATE $K items=$QI"
"$OCTREE" query --addr "$ADDR" --send "$LINE" > "$WORK/routed.txt"
grep -q '^OK TOPK' "$WORK/routed.txt" \
    || { cat "$WORK/routed.txt"; fail "routed NAVIGATE did not answer OK TOPK"; }
# Deterministic across runs through the router...
"$OCTREE" query --addr "$ADDR" --send "$LINE" > "$WORK/routed2.txt"
cmp -s "$WORK/routed.txt" "$WORK/routed2.txt" \
    || fail "routed NAVIGATE is not deterministic across runs"
# ...and across replicas asked directly (seeded index build ⇒ every
# replica serving the same tree holds a bit-identical ANN index).
"$OCTREE" navigate --addr "$ADDR_r0" --items "$QI" --k "$K" > "$WORK/rep0.txt"
"$OCTREE" navigate --addr "$ADDR_r1" --items "$QI" --k "$K" > "$WORK/rep1.txt"
cmp -s "$WORK/rep0.txt" "$WORK/rep1.txt" \
    || { diff "$WORK/rep0.txt" "$WORK/rep1.txt"; fail "replicas disagree on NAVIGATE top-k"; }
echo "ann smoke: NAVIGATE top-$K byte-identical across runs and replicas"

# Served recall floor: the routed top-k against the offline exhaustive
# reference (same tree, same variant, same k).
grep -o 'results=[0-9:.,-]*' "$WORK/routed.txt" | sed 's/^results=//' \
    | tr ',' '\n' | cut -d: -f1 > "$WORK/served_cats.txt"
SERVED_HITS=$(overlap "$WORK/served_cats.txt")
[[ "$SERVED_HITS" -ge "$FLOOR" ]] \
    || fail "served recall $SERVED_HITS/$EXACT_N below the floor $FLOOR"
echo "ann smoke: served top-$K recall $SERVED_HITS/$EXACT_N (floor $FLOOR)"

# Degenerate forms are typed rejections, not failures. The CLI parses the
# line before sending, so k=0 dies client-side with the same message the
# server would answer (the raw-socket path is pinned in the serve e2e
# tests).
if "$OCTREE" query --addr "$ADDR" --send "NAVIGATE 0 items=1" > "$WORK/bad.txt" 2>&1; then
    grep -q '^ERR bad-request' "$WORK/bad.txt" \
        || { cat "$WORK/bad.txt"; fail "k=0 must be a typed bad-request"; }
else
    grep -q 'top-k count must be positive' "$WORK/bad.txt" \
        || { cat "$WORK/bad.txt"; fail "k=0 must be rejected with the typed message"; }
fi

echo "ann smoke: index determinism, offline/served recall, and top-k stability all verified"
