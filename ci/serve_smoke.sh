#!/usr/bin/env bash
# Serving smoke test: start the daemon on a real tree, drive it with
# concurrent queries (enough to trigger load shedding), hot-swap the tree
# mid-traffic, then SIGTERM it and assert a graceful drain:
#   * every connection gets a typed one-line answer (OK …, OVERLOADED, ERR),
#     never a hang or a torn response;
#   * the process exits 0 on SIGTERM;
#   * the final metrics report exists and records the shed/served traffic.
set -euo pipefail
cd "$(dirname "$0")/.."

OCTREE=${OCTREE:-target/release/octree}
SCALE=${SCALE:-0.01}
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

if [[ ! -x "$OCTREE" ]]; then
    cargo build --release -p oct-cli --bin octree
fi

# A real tree from a synthetic query log.
"$OCTREE" export --dataset A --scale "$SCALE" --out "$WORK/q.tsv" > "$WORK/export.txt"
ITEMS=$(grep -o 'use --items [0-9]*' "$WORK/export.txt" | grep -o '[0-9]*$')
"$OCTREE" build --log "$WORK/q.tsv" --items "$ITEMS" --labels --out "$WORK/a.oct" > /dev/null
# A second tree (different similarity floor) for the hot swap.
"$OCTREE" build --log "$WORK/q.tsv" --items "$ITEMS" --labels --min-frequency 50 \
    --out "$WORK/b.oct" > /dev/null

# Tiny capacity so a modest burst reliably sheds.
"$OCTREE" serve --tree "$WORK/a.oct" --addr 127.0.0.1:0 --workers 2 --queue 2 \
    --deadline-ms 1000 --metrics "$WORK/serve_metrics.json" > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# Wait for the bound address to appear in the log (port 0 = ephemeral).
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(grep -o 'listening on [0-9.:]*' "$WORK/serve.log" 2> /dev/null \
        | head -n1 | awk '{print $3}') || true
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "serve smoke: server never came up"; cat "$WORK/serve.log"; exit 1; }

query() { "$OCTREE" query --addr "$ADDR" --send "$1"; }

# Sanity: the protocol answers.
query "PING" | grep -q '^OK PONG' || { echo "serve smoke: PING failed"; exit 1; }
query "CATEGORIZE 0,1,2" | grep -q '^OK COVER' || { echo "serve smoke: CATEGORIZE failed"; exit 1; }
query "STATS" | grep -q '^OK STATS' || { echo "serve smoke: STATS failed"; exit 1; }

# Concurrent burst, far over workers+queue: every query must come back with
# a typed line (served or shed), and at least one must be shed.
BURST=40
BURST_PIDS=()
for i in $(seq 1 "$BURST"); do
    query "SCORE $((i % ITEMS)),$(((i + 1) % ITEMS))" > "$WORK/burst.$i" 2>&1 &
    BURST_PIDS+=("$!")
done
# Hot swap mid-burst: published atomically, traffic keeps flowing. The
# swap request itself may be shed by the burst — OVERLOADED is the typed
# "back off and retry" signal, so honor it like a real client would.
for _ in $(seq 1 50); do
    query "SWAP $WORK/b.oct" > "$WORK/swap.txt" || true
    grep -q '^OK SWAPPED' "$WORK/swap.txt" && break
    grep -q '^OVERLOADED' "$WORK/swap.txt" \
        || { echo "serve smoke: hot swap failed"; cat "$WORK/swap.txt"; exit 1; }
    sleep 0.1
done
grep -q '^OK SWAPPED epoch=' "$WORK/swap.txt" \
    || { echo "serve smoke: hot swap never admitted"; cat "$WORK/swap.txt"; exit 1; }
# Wait only on the burst clients — a bare `wait` would block on the server.
for pid in "${BURST_PIDS[@]}"; do
    wait "$pid" || true
done

ANSWERED=0 SHED=0
for i in $(seq 1 "$BURST"); do
    if grep -q '^OK COVER' "$WORK/burst.$i"; then
        ANSWERED=$((ANSWERED + 1))
    elif grep -q '^OVERLOADED queue=' "$WORK/burst.$i"; then
        SHED=$((SHED + 1))
    else
        echo "serve smoke: query $i got no typed response:"
        cat "$WORK/burst.$i"
        exit 1
    fi
done
echo "serve smoke: burst of $BURST → $ANSWERED served, $SHED shed"
[[ "$ANSWERED" -gt 0 ]] || { echo "serve smoke: nothing served"; exit 1; }
[[ "$SHED" -gt 0 ]] || { echo "serve smoke: shedding never triggered"; exit 1; }

# Post-swap queries answer from the new epoch.
query "PING" | grep -Eq 'epoch=[1-9]' || { echo "serve smoke: post-swap epoch wrong"; exit 1; }

# Graceful drain on SIGTERM: clean exit and a flushed metrics report.
kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
SERVER_PID=""
[[ "$EXIT" -eq 0 ]] || { echo "serve smoke: drain exited $EXIT"; cat "$WORK/serve.log"; exit 1; }
grep -q 'drained cleanly' "$WORK/serve.log" \
    || { echo "serve smoke: no drain marker"; cat "$WORK/serve.log"; exit 1; }
[[ -s "$WORK/serve_metrics.json" ]] || { echo "serve smoke: metrics report missing"; exit 1; }
grep -q 'serve/shed' "$WORK/serve_metrics.json" \
    || { echo "serve smoke: shed counter missing from report"; exit 1; }
grep -q 'serve/latency' "$WORK/serve_metrics.json" \
    || { echo "serve smoke: latency histogram missing from report"; exit 1; }
echo "serve smoke: graceful drain, typed shedding, and hot swap all verified"
