#!/usr/bin/env bash
# Streaming smoke test: run `octree watch` against a live daemon and assert
# the full incremental loop end to end:
#   * every applied delta batch rewrites the tree and SWAPs it into the
#     daemon, so the served epoch advances past the batch count;
#   * kill -9 mid-stream loses nothing — `--resume` restores from the
#     stream checkpoint and replays only the remaining batches;
#   * the resumed run's final tree is byte-identical to an uninterrupted
#     run with the same flags (the feed is a pure function of them);
#   * the metrics report records the incr/* spans and counters.
set -euo pipefail
cd "$(dirname "$0")/.."

OCTREE=${OCTREE:-target/release/octree}
SCALE=${SCALE:-0.05}
# Enough batches that a kill fired right after the first publish always
# lands mid-stream, never after the final batch.
BATCHES=${BATCHES:-12}
WORK=$(mktemp -d)
SERVER_PID=""
WATCH_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2> /dev/null || true
    [[ -n "$WATCH_PID" ]] && kill -9 "$WATCH_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

if [[ ! -x "$OCTREE" ]]; then
    cargo build --release -p oct-cli --bin octree
fi

# A synthetic log plus a seed tree for the daemon to start from.
"$OCTREE" export --dataset A --scale "$SCALE" --out "$WORK/q.tsv" > "$WORK/export.txt"
ITEMS=$(grep -o 'use --items [0-9]*' "$WORK/export.txt" | grep -o '[0-9]*$')
"$OCTREE" build --log "$WORK/q.tsv" --items "$ITEMS" --out "$WORK/seed.oct" > /dev/null

"$OCTREE" serve --tree "$WORK/seed.oct" --addr 127.0.0.1:0 --workers 2 --queue 16 \
    > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(grep -o 'listening on [0-9.:]*' "$WORK/serve.log" 2> /dev/null \
        | head -n1 | awk '{print $3}') || true
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "stream smoke: server never came up"; cat "$WORK/serve.log"; exit 1; }

query() { "$OCTREE" query --addr "$ADDR" --send "$1"; }

watch_flags=(--log "$WORK/q.tsv" --items "$ITEMS" --days 20 --batches "$BATCHES"
    --seed 11 --recent-days 7 --min-weight 0.5 --checkpoint "$WORK/stream.ckpt")

# Reference run (no daemon, no interruption): the ground-truth final tree.
"$OCTREE" watch "${watch_flags[@]/stream.ckpt/ref.ckpt}" --out "$WORK/ref.oct" \
    > "$WORK/ref.log"
grep -Eq "batch +$BATCHES/$BATCHES" "$WORK/ref.log" \
    || { echo "stream smoke: reference run incomplete"; cat "$WORK/ref.log"; exit 1; }

# Live run, publishing each batch into the daemon — kill -9 it mid-stream.
# The per-batch publish makes each line an observable commit point, so
# killing after the first "published" line is guaranteed mid-stream.
"$OCTREE" watch "${watch_flags[@]}" --out "$WORK/live.oct" --addr "$ADDR" \
    --metrics "$WORK/watch_metrics.json" > "$WORK/watch1.log" 2>&1 &
WATCH_PID=$!
for _ in $(seq 1 200); do
    grep -q 'published epoch' "$WORK/watch1.log" 2> /dev/null && break
    sleep 0.05
done
kill -9 "$WATCH_PID" 2> /dev/null || true
wait "$WATCH_PID" 2> /dev/null || true
WATCH_PID=""
grep -q 'published epoch' "$WORK/watch1.log" \
    || { echo "stream smoke: first run never published"; cat "$WORK/watch1.log"; exit 1; }
[[ -f "$WORK/stream.ckpt" ]] \
    || { echo "stream smoke: no checkpoint after kill -9"; exit 1; }

# Resume: replays only the remaining batches and finishes the stream.
"$OCTREE" watch "${watch_flags[@]}" --out "$WORK/live.oct" --addr "$ADDR" \
    --metrics "$WORK/watch_metrics.json" --resume > "$WORK/watch2.log" 2>&1 \
    || { echo "stream smoke: resume failed"; cat "$WORK/watch2.log"; exit 1; }
grep -q 'resumed at batch' "$WORK/watch2.log" \
    || { echo "stream smoke: resume started fresh"; cat "$WORK/watch2.log"; exit 1; }
grep -Eq "batch +$BATCHES/$BATCHES" "$WORK/watch2.log" \
    || { echo "stream smoke: resumed run incomplete"; cat "$WORK/watch2.log"; exit 1; }

# The interrupted-and-resumed stream must land on the reference tree.
cmp -s "$WORK/ref.oct" "$WORK/live.oct" \
    || { echo "stream smoke: resumed tree diverged from uninterrupted run"; exit 1; }

# The daemon now serves an epoch advanced by the published batches.
query "PING" | grep -Eq 'epoch=[1-9]' \
    || { echo "stream smoke: served epoch never advanced"; exit 1; }
EPOCH=$(query "PING" | grep -o 'epoch=[0-9]*' | grep -o '[0-9]*')
[[ "$EPOCH" -ge 2 ]] \
    || { echo "stream smoke: expected >= 2 published epochs, got $EPOCH"; exit 1; }

# The telemetry report records the incremental pipeline.
grep -q 'incr/classify' "$WORK/watch_metrics.json" \
    || { echo "stream smoke: incr spans missing from metrics"; exit 1; }
grep -q 'incr/upserts' "$WORK/watch_metrics.json" \
    || { echo "stream smoke: incr counters missing from metrics"; exit 1; }

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
SERVER_PID=""
echo "stream smoke: publish, kill -9, resume, and bit-identical replay all verified"
