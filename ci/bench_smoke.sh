#!/usr/bin/env bash
# Benchmark-harness smoke test:
#   * `octree bench` at tiny scale produces a schema-valid BENCH_*.json
#     covering every suite (conflict, MIS, matrix, clustering, scoring,
#     persistence, serving) with an embedded pipeline span report;
#   * `--baseline` in report-only mode renders the delta table and exits 0;
#   * two runs of the same binary never trip the regression gate (the
#     MAD-derived noise margin absorbs run-to-run jitter).
#
# Every bench invocation's output file is validated by check_bench_file —
# an absent/empty file or a missing suite fails the script loudly, so an
# empty BENCH trajectory can never slip through CI silently again.
set -euo pipefail
cd "$(dirname "$0")/.."

OCTREE=${OCTREE:-target/release/octree}
SCALE=${SCALE:-0.02}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Must mirror SUITES in crates/bench/src/perf.rs.
SUITES=(conflict mis cluster matrix score persist incr ann serve router chaos)

# check_bench_file <path>: the file must exist, be non-empty, carry the
# schema stamp, cover every suite, and embed the pipeline report.
check_bench_file() {
    local file=$1
    [[ -e "$file" ]] || { echo "bench smoke: BENCH file $file was not written"; exit 1; }
    [[ -s "$file" ]] || { echo "bench smoke: BENCH file $file is empty"; exit 1; }
    grep -q '"bench_schema_version"' "$file" \
        || { echo "bench smoke: schema version missing in $file"; exit 1; }
    for suite in "${SUITES[@]}"; do
        grep -q "\"$suite/" "$file" \
            || { echo "bench smoke: suite $suite missing in $file"; exit 1; }
    done
    grep -q '"pipeline"' "$file" \
        || { echo "bench smoke: embedded pipeline report missing in $file"; exit 1; }
}

if [[ ! -x "$OCTREE" ]]; then
    cargo build --release -p oct-cli --bin octree
fi

# Baseline run.
"$OCTREE" bench --scale "$SCALE" --threads 1,2 --reps 2 --warmup 1 \
    --out "$WORK/base.json" > "$WORK/base.txt"
check_bench_file "$WORK/base.json"

# Record-level sanity beyond suite prefixes: the exact hot-path records,
# including both substrates of the set-similarity kernel.
for record in 'conflict/analyze/t1' 'mis/solve' 'matrix/fill/t1' \
    'matrix/setsim_scalar' 'matrix/setsim_packed' \
    'cluster/nn_chain' 'score/tree/t1' 'persist/roundtrip' \
    'ann/build' 'ann/search/ef64' 'ann/cover_exhaustive' 'ann/cover_narrowed' \
    'serve/latency_p50' 'serve/throughput'; do
    grep -q "\"$record\"" "$WORK/base.json" \
        || { echo "bench smoke: record $record missing"; exit 1; }
done

# Report-only comparison: renders the table, exits 0 regardless of deltas.
"$OCTREE" bench --scale "$SCALE" --threads 1,2 --reps 2 --warmup 1 \
    --out "$WORK/head.json" --baseline "$WORK/base.json" > "$WORK/head.txt"
check_bench_file "$WORK/head.json"
grep -q 'report-only mode' "$WORK/head.txt" \
    || { echo "bench smoke: report-only marker missing"; cat "$WORK/head.txt"; exit 1; }
grep -q 'verdict' "$WORK/head.txt" \
    || { echo "bench smoke: delta table missing"; cat "$WORK/head.txt"; exit 1; }

# Gated comparison: same binary, same config — must not regress.
"$OCTREE" bench --scale "$SCALE" --threads 1,2 --reps 2 --warmup 1 \
    --out "$WORK/gated.json" --baseline "$WORK/base.json" --gate 25 \
    > "$WORK/gated.txt" \
    || { echo "bench smoke: same-binary run tripped the gate"; cat "$WORK/gated.txt"; exit 1; }
check_bench_file "$WORK/gated.json"
grep -q 'no regressions beyond the 25% gate' "$WORK/gated.txt" \
    || { echo "bench smoke: gate confirmation missing"; cat "$WORK/gated.txt"; exit 1; }

echo "bench smoke: schema-valid BENCH json, report-only + gated comparison verified"
