#!/usr/bin/env bash
# Router chaos smoke: 3 shards × 2 replicas behind the scatter-gather
# router. The fault sequence and the assertions:
#   * kill -9 one replica mid-burst → zero client-visible request
#     failures (every query gets a typed OK, no ERR, no PARTIAL — the
#     shard's second replica covers);
#   * kill the shard's second replica too → responses carry the typed
#     `partial=1 missing=<shard>` marker and STATS reports degraded=1,
#     and repeated identical queries stay byte-identical while degraded
#     (deterministic merge over the fixed live-shard set);
#   * restart both replicas on their old ports → answers recover
#     byte-identical to the pre-kill full-fleet capture;
#   * SIGTERM drains the router cleanly and flushes its metrics report.
set -euo pipefail
cd "$(dirname "$0")/.."

OCTREE=${OCTREE:-target/release/octree}
SCALE=${SCALE:-0.01}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in ${PIDS+"${PIDS[@]}"}; do kill -9 "$pid" 2> /dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT
fail() { echo "router smoke: $*"; exit 1; }

if [[ ! -x "$OCTREE" ]]; then
    cargo build --release -p oct-cli --bin octree
fi

# A real tree from a synthetic query log (every replica serves the full
# tree; shards partition the *item universe*, not the tree).
"$OCTREE" export --dataset A --scale "$SCALE" --out "$WORK/q.tsv" > "$WORK/export.txt"
ITEMS=$(grep -o 'use --items [0-9]*' "$WORK/export.txt" | grep -o '[0-9]*$')
"$OCTREE" build --log "$WORK/q.tsv" --items "$ITEMS" --labels --out "$WORK/a.oct" > /dev/null

# Starts (or restarts) a backend replica; $1 names its log, $2 is the bind
# address (127.0.0.1:0 = ephemeral). Sets ADDR_<name> and PID_<name> (no
# command substitution — the PID bookkeeping must land in this shell).
start_backend() {
    local name=$1 bind=${2:-127.0.0.1:0} addr="" pid="" attempt
    for attempt in $(seq 1 20); do
        "$OCTREE" serve --tree "$WORK/a.oct" --addr "$bind" --workers 2 --queue 16 \
            > "$WORK/$name.log" 2>&1 &
        pid=$!
        PIDS+=("$pid")
        for _ in $(seq 1 50); do
            addr=$(grep -o 'listening on [0-9.:]*' "$WORK/$name.log" 2> /dev/null \
                | head -n1 | awk '{print $3}') || true
            [[ -n "$addr" ]] && break
            kill -0 "$pid" 2> /dev/null || break # bind failed; retry
            sleep 0.1
        done
        [[ -n "$addr" ]] && break
        sleep 0.2
    done
    [[ -n "$addr" ]] || { cat "$WORK/$name.log"; fail "replica $name never came up"; }
    eval "ADDR_$name=\$addr"
    eval "PID_$name=\$pid"
}

# 3 shards × 2 replicas.
start_backend s0r0; start_backend s0r1
start_backend s1r0; start_backend s1r1
start_backend s2r0; start_backend s2r1
A00=$ADDR_s0r0 A01=$ADDR_s0r1
A10=$ADDR_s1r0 A11=$ADDR_s1r1
A20=$ADDR_s2r0 A21=$ADDR_s2r1

"$OCTREE" router --shards "$A00,$A01;$A10,$A11;$A20,$A21" --addr 127.0.0.1:0 \
    --metrics "$WORK/router_metrics.json" > "$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(grep -o 'listening on [0-9.:]*' "$WORK/router.log" 2> /dev/null \
        | head -n1 | awk '{print $3}') || true
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { cat "$WORK/router.log"; fail "router never came up"; }

query() { "$OCTREE" query --addr "$ADDR" --send "$1"; }

# Sanity: the routed protocol answers and the fleet is healthy.
query "PING" | grep -q '^OK PONG' || fail "PING failed"
query "CATEGORIZE 0,1,2" | grep -q '^OK COVER' || fail "CATEGORIZE failed"
query "STATS" | grep -q 'degraded=0' || fail "healthy fleet reported degraded"

# A fixed query list for the determinism captures: a universe-spanning
# request (hits every shard) plus scattered small ones.
SPAN=$(seq -s, 0 39)
QUERY_LIST=("CATEGORIZE $SPAN" "SCORE $SPAN")
for i in 0 1 2 3 4 5 6 7 8 9; do
    QUERY_LIST+=("CATEGORIZE $i,$(((i * 13 + 7) % ITEMS)),$(((i * 29 + 3) % ITEMS))")
done
capture() {
    : > "$1"
    local q
    for q in "${QUERY_LIST[@]}"; do query "$q" >> "$1"; done
}
capture "$WORK/before.txt"
grep -q 'partial=1' "$WORK/before.txt" && fail "full fleet answered partial"
grep -q '^ERR' "$WORK/before.txt" && fail "full fleet answered ERR"

# Concurrent burst through the router; kill -9 one replica mid-burst.
BURST=40
BURST_PIDS=()
for i in $(seq 1 "$BURST"); do
    query "SCORE $((i % ITEMS)),$(((i * 7 + 1) % ITEMS)),$(((i * 31 + 5) % ITEMS))" \
        > "$WORK/burst.$i" 2>&1 &
    BURST_PIDS+=("$!")
done
kill -9 "$PID_s0r0"
for pid in "${BURST_PIDS[@]}"; do
    wait "$pid" || true
done
for i in $(seq 1 "$BURST"); do
    grep -q '^OK COVER' "$WORK/burst.$i" || {
        cat "$WORK/burst.$i"
        fail "burst query $i failed after a single-replica kill"
    }
    grep -q 'partial=1' "$WORK/burst.$i" \
        && fail "burst query $i went partial with the shard's second replica alive"
done
echo "router smoke: $BURST/$BURST burst queries survived a mid-burst replica kill"
query "STATS" | grep -q 'degraded=0' || fail "replica loss must not degrade a covered shard"

# The loadgen satellite pointed at the router: open-loop Poisson arrivals
# with Zipf key skew, zero failed requests.
"$OCTREE" loadgen --addr "$ADDR" --items "$ITEMS" --connections 4 --requests 50 \
    --rps 300 --zipf 1.1 > "$WORK/loadgen.txt"
grep -q 'errors=0 transport=0' "$WORK/loadgen.txt" \
    || { cat "$WORK/loadgen.txt"; fail "loadgen saw failed requests"; }

# Kill the shard's second replica: shard 0 is now fully down. Spanning
# queries must degrade to a typed PARTIAL — never an error.
kill -9 "$PID_s0r1"
PARTIAL=""
for _ in $(seq 1 100); do
    query "CATEGORIZE $SPAN" > "$WORK/partial.txt" 2>&1 || true
    # Settled means: exactly shard 0 missing (not a transient 0,N flap
    # while breakers converge) and the very next repeat byte-identical.
    if grep -qE 'partial=1 missing=0([^,0-9]|$)' "$WORK/partial.txt"; then
        query "CATEGORIZE $SPAN" > "$WORK/partial2.txt" 2>&1 || true
        if cmp -s "$WORK/partial.txt" "$WORK/partial2.txt"; then
            PARTIAL=yes
            break
        fi
    fi
    sleep 0.1
done
[[ -n "$PARTIAL" ]] || { cat "$WORK/partial.txt"; fail "dead shard never settled into PARTIAL"; }
grep -q '^OK COVER' "$WORK/partial.txt" || fail "PARTIAL response is not a typed OK"
query "STATS" | grep -q 'degraded=1' || fail "dead shard must report degraded=1"
# Deterministic while degraded: byte-identical repeats over the fixed
# live-shard set.
query "CATEGORIZE $SPAN" > "$WORK/partial3.txt"
cmp -s "$WORK/partial2.txt" "$WORK/partial3.txt" \
    || { diff "$WORK/partial2.txt" "$WORK/partial3.txt" | head; fail "degraded answers are not deterministic"; }
echo "router smoke: whole-shard loss degraded to deterministic typed PARTIAL"

# Recovery: restart both replicas on their old ports and wait for the
# probe loop to re-admit them.
start_backend s0r0b "$A00" > /dev/null
start_backend s0r1b "$A01" > /dev/null
RECOVERED=""
for _ in $(seq 1 200); do
    query "CATEGORIZE $SPAN" > "$WORK/recover.txt" 2>&1 || true
    if grep -q '^OK COVER' "$WORK/recover.txt" \
        && ! grep -q 'partial=1' "$WORK/recover.txt"; then
        RECOVERED=yes
        break
    fi
    sleep 0.1
done
[[ -n "$RECOVERED" ]] || { cat "$WORK/recover.txt"; fail "fleet never recovered"; }

# Full-fleet answers are byte-identical to the pre-kill capture, twice
# (recovered-state determinism across repeated runs).
capture "$WORK/after.txt"
cmp -s "$WORK/before.txt" "$WORK/after.txt" \
    || { diff "$WORK/before.txt" "$WORK/after.txt" | head; fail "recovered answers differ from the pre-kill capture"; }
capture "$WORK/after2.txt"
cmp -s "$WORK/after.txt" "$WORK/after2.txt" || fail "recovered answers are not deterministic"
# The degraded flag is sticky: the router served partial answers at some
# point in its life, and STATS keeps saying so after recovery.
query "STATS" | grep -q 'degraded=1' || fail "sticky degraded flag was lost on recovery"
echo "router smoke: recovered byte-identical to the pre-kill capture"

# Graceful drain on SIGTERM: clean exit and a flushed metrics report with
# the fan-out instrumentation.
kill -TERM "$ROUTER_PID"
EXIT=0
wait "$ROUTER_PID" || EXIT=$?
[[ "$EXIT" -eq 0 ]] || { cat "$WORK/router.log"; fail "router drain exited $EXIT"; }
grep -q 'drained cleanly' "$WORK/router.log" || fail "no drain marker in the router log"
[[ -s "$WORK/router_metrics.json" ]] || fail "router metrics report missing"
grep -q 'router/fanout_latency' "$WORK/router_metrics.json" \
    || fail "fan-out latency histogram missing from the report"
grep -q 'router/partial' "$WORK/router_metrics.json" \
    || fail "partial counter missing from the report"
echo "router smoke: failover, hedging fleet, PARTIAL degradation, and drain all verified"
