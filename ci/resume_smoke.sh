#!/usr/bin/env bash
# Kill/resume smoke test: a checkpointed `repro stages` run killed mid-flight
# must, after `--resume`, complete and produce a final tree bit-identical to
# an uninterrupted run.
#
# The check is timing-robust by construction: wherever the kill lands —
# before the first checkpoint, between rounds, or after completion — the
# deterministic pipeline must converge to the same `stages.oct` bytes.
set -euo pipefail
cd "$(dirname "$0")/.."

REPRO=${REPRO:-target/release/repro}
SCALE=${SCALE:-0.02}
KILL_AFTER=${KILL_AFTER:-1}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$REPRO" ]]; then
    cargo build --release -p oct-bench --bin repro
fi

# Uninterrupted reference run.
"$REPRO" stages --scale "$SCALE" --checkpoint-dir "$WORK/ref" > /dev/null

# Checkpointed run, killed mid-flight.
"$REPRO" stages --scale "$SCALE" --checkpoint-dir "$WORK/killed" > /dev/null &
pid=$!
sleep "$KILL_AFTER"
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

# Resume must finish the run and reproduce the reference tree bit-for-bit.
"$REPRO" stages --scale "$SCALE" --checkpoint-dir "$WORK/killed" --resume > /dev/null

cmp "$WORK/ref/stages.oct" "$WORK/killed/stages.oct"
echo "resume smoke: final trees are bit-identical"
