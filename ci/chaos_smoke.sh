#!/usr/bin/env bash
# Chaos smoke: 3 shards × 2 replicas, every replica behind a seeded
# `octree chaos` fault proxy, the scatter-gather router on top. The fault
# choreography and the four router invariants it asserts:
#   * shards 1–2 run behind *mixed* fault proxies (delays, resets at byte
#     offsets, trickle writes) for the whole run → zero client-visible
#     request failures while every shard keeps a reachable replica;
#   * shard 0's proxies restart as *black holes* (accept, never respond)
#     → responses settle to the typed `partial=1 missing=0` marker (never
#     ERR, never garbage), byte-identical while degraded, and STATS
#     latches degraded=1;
#   * the black holes restart as passthrough on the same ports → answers
#     recover byte-identical to the pre-fault capture, and the router's
#     fd count returns to its pre-fault baseline (no connection leak);
#   * the fault schedule is a pure function of the seed → printing the
#     same plan twice is cmp-identical, and re-running the capture with
#     the chaos tier restarted on the same seed replays the same bytes.
set -euo pipefail
cd "$(dirname "$0")/.."

OCTREE=${OCTREE:-target/release/octree}
SCALE=${SCALE:-0.01}
SEED=${SEED:-7}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in ${PIDS+"${PIDS[@]}"}; do kill -9 "$pid" 2> /dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT
fail() { echo "chaos smoke: $*"; exit 1; }

if [[ ! -x "$OCTREE" ]]; then
    cargo build --release -p oct-cli --bin octree
fi

"$OCTREE" export --dataset A --scale "$SCALE" --out "$WORK/q.tsv" > "$WORK/export.txt"
ITEMS=$(grep -o 'use --items [0-9]*' "$WORK/export.txt" | grep -o '[0-9]*$')
"$OCTREE" build --log "$WORK/q.tsv" --items "$ITEMS" --labels --out "$WORK/a.oct" > /dev/null

# Starts a backend replica; $1 names its log. Sets ADDR_<name>, PID_<name>.
start_backend() {
    local name=$1 addr="" pid="" attempt
    for attempt in $(seq 1 20); do
        "$OCTREE" serve --tree "$WORK/a.oct" --addr 127.0.0.1:0 --workers 2 --queue 16 \
            > "$WORK/$name.log" 2>&1 &
        pid=$!
        PIDS+=("$pid")
        for _ in $(seq 1 50); do
            addr=$(grep -o 'listening on [0-9.:]*' "$WORK/$name.log" 2> /dev/null \
                | head -n1 | awk '{print $3}') || true
            [[ -n "$addr" ]] && break
            kill -0 "$pid" 2> /dev/null || break
            sleep 0.1
        done
        [[ -n "$addr" ]] && break
        sleep 0.2
    done
    [[ -n "$addr" ]] || { cat "$WORK/$name.log"; fail "replica $name never came up"; }
    eval "ADDR_$name=\$addr"
    eval "PID_$name=\$pid"
}

start_backend s0r0; start_backend s0r1
start_backend s1r0; start_backend s1r1
start_backend s2r0; start_backend s2r1

# Reads "proxy <idx> listening on <addr> -> <upstream>" from a chaos log.
proxy_addr() {
    grep -o "proxy $2 listening on [0-9.:]*" "$WORK/$1.log" 2> /dev/null \
        | head -n1 | awk '{print $5}' || true
}

# Starts a chaos-proxy tier; $1 names its log, $2 the profile, $3 the
# ';'-separated LISTEN=UPSTREAM routes, $4 how many proxies to wait for.
# Sets PID_<name>.
start_chaos() {
    local name=$1 profile=$2 routes=$3 count=$4 pid="" up attempt i
    for attempt in $(seq 1 20); do
        "$OCTREE" chaos --routes "$routes" --seed "$SEED" --profile "$profile" \
            > "$WORK/$name.log" 2>&1 &
        pid=$!
        PIDS+=("$pid")
        for _ in $(seq 1 50); do
            up=1
            for i in $(seq 0 $((count - 1))); do
                [[ -n "$(proxy_addr "$name" "$i")" ]] || { up=""; break; }
            done
            [[ -n "$up" ]] && break
            kill -0 "$pid" 2> /dev/null || break # bind failed; retry
            sleep 0.1
        done
        [[ -n "$up" ]] && break
        sleep 0.2
    done
    [[ -n "${up:-}" ]] || { cat "$WORK/$name.log"; fail "chaos tier $name never came up"; }
    eval "PID_$name=\$pid"
}

# The long-lived mixed-fault tier over shards 1 and 2 (proxies 0..3), and
# the restartable shard-0 tier (proxies 0..1), passthrough for now.
start_chaos chaos12 mixed \
    "127.0.0.1:0=$ADDR_s1r0;127.0.0.1:0=$ADDR_s1r1;127.0.0.1:0=$ADDR_s2r0;127.0.0.1:0=$ADDR_s2r1" 4
P10=$(proxy_addr chaos12 0); P11=$(proxy_addr chaos12 1)
P20=$(proxy_addr chaos12 2); P21=$(proxy_addr chaos12 3)
start_chaos chaos0 passthrough "127.0.0.1:0=$ADDR_s0r0;127.0.0.1:0=$ADDR_s0r1" 2
P00=$(proxy_addr chaos0 0); P01=$(proxy_addr chaos0 1)

grep -q "plan chaos-v1 seed=$SEED" "$WORK/chaos12.log" \
    || fail "chaos tier did not print its plan fingerprint"

# The router talks only to proxies — every byte to shards 1–2 crosses the
# mixed-fault schedule.
"$OCTREE" router --shards "$P00,$P01;$P10,$P11;$P20,$P21" --addr 127.0.0.1:0 \
    --metrics "$WORK/router_metrics.json" > "$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(grep -o 'listening on [0-9.:]*' "$WORK/router.log" 2> /dev/null \
        | head -n1 | awk '{print $3}') || true
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { cat "$WORK/router.log"; fail "router never came up"; }

query() { "$OCTREE" query --addr "$ADDR" --send "$1"; }

query "PING" | grep -q '^OK PONG' || fail "PING through the chaos tier failed"
query "STATS" | grep -q 'degraded=0' || fail "healthy chaos fleet reported degraded"

SPAN=$(seq -s, 0 39)
QUERY_LIST=("CATEGORIZE $SPAN" "SCORE $SPAN")
for i in 0 1 2 3 4 5 6 7 8 9; do
    QUERY_LIST+=("CATEGORIZE $i,$(((i * 13 + 7) % ITEMS)),$(((i * 29 + 3) % ITEMS))")
done
capture() {
    : > "$1"
    local q
    for q in "${QUERY_LIST[@]}"; do query "$q" >> "$1"; done
}

# Invariant 1: zero client-visible failures under the mixed fault mix.
capture "$WORK/before.txt"
grep -q 'partial=1' "$WORK/before.txt" && fail "covered fleet answered partial under mixed faults"
grep -q '^ERR' "$WORK/before.txt" && fail "mixed faults leaked an ERR to the client"
grep -cq '^OK' "$WORK/before.txt" || fail "capture produced no OK lines"
"$OCTREE" loadgen --addr "$ADDR" --items "$ITEMS" --connections 4 --requests 50 \
    --rps 300 --zipf 1.1 > "$WORK/loadgen.txt"
grep -q 'errors=0 transport=0' "$WORK/loadgen.txt" \
    || { cat "$WORK/loadgen.txt"; fail "loadgen saw failed requests under mixed faults"; }
echo "chaos smoke: mixed faults on shards 1-2 were client-invisible"

FD_BASELINE=$(ls /proc/"$ROUTER_PID"/fd | wc -l)

# Invariant 2: whole-shard black-hole degrades to deterministic typed
# PARTIAL. Restart shard 0's proxies on their old ports as black holes.
kill -TERM "$PID_chaos0"
wait "$PID_chaos0" || true
start_chaos chaos0bh blackhole "$P00=$ADDR_s0r0;$P01=$ADDR_s0r1" 2
PARTIAL=""
for _ in $(seq 1 200); do
    query "CATEGORIZE $SPAN" > "$WORK/partial.txt" 2>&1 || true
    if grep -qE 'partial=1 missing=0([^,0-9]|$)' "$WORK/partial.txt"; then
        query "CATEGORIZE $SPAN" > "$WORK/partial2.txt" 2>&1 || true
        if cmp -s "$WORK/partial.txt" "$WORK/partial2.txt"; then
            PARTIAL=yes
            break
        fi
    fi
    sleep 0.1
done
[[ -n "$PARTIAL" ]] || { cat "$WORK/partial.txt"; fail "black-holed shard never settled into PARTIAL"; }
grep -q '^OK COVER' "$WORK/partial.txt" || fail "PARTIAL response is not a typed OK"
grep -q '^ERR' "$WORK/partial.txt" && fail "black hole leaked an ERR"
query "STATS" | grep -q 'degraded=1' || fail "black-holed shard must report degraded=1"
query "CATEGORIZE $SPAN" > "$WORK/partial3.txt"
cmp -s "$WORK/partial2.txt" "$WORK/partial3.txt" \
    || { diff "$WORK/partial2.txt" "$WORK/partial3.txt" | head; fail "degraded answers are not deterministic"; }
echo "chaos smoke: whole-shard black hole degraded to deterministic typed PARTIAL"

# Invariant 3: recovery. Passthrough again on the same ports — answers
# must return byte-identical to the pre-fault capture, and the router's
# fd count must return to its baseline (no leaked connections from the
# black-hole phase).
kill -TERM "$PID_chaos0bh"
wait "$PID_chaos0bh" || true
start_chaos chaos0pt passthrough "$P00=$ADDR_s0r0;$P01=$ADDR_s0r1" 2
RECOVERED=""
for _ in $(seq 1 200); do
    query "CATEGORIZE $SPAN" > "$WORK/recover.txt" 2>&1 || true
    if grep -q '^OK COVER' "$WORK/recover.txt" \
        && ! grep -q 'partial=1' "$WORK/recover.txt"; then
        RECOVERED=yes
        break
    fi
    sleep 0.1
done
[[ -n "$RECOVERED" ]] || { cat "$WORK/recover.txt"; fail "fleet never recovered after faults cleared"; }
capture "$WORK/after.txt"
cmp -s "$WORK/before.txt" "$WORK/after.txt" \
    || { diff "$WORK/before.txt" "$WORK/after.txt" | head; fail "recovered answers differ from the pre-fault capture"; }
query "STATS" | grep -q 'degraded=1' || fail "sticky degraded flag was lost on recovery"
FD_AFTER=$(ls /proc/"$ROUTER_PID"/fd | wc -l)
[[ "$FD_AFTER" -le $((FD_BASELINE + 16)) ]] \
    || fail "router leaked fds across the fault cycle ($FD_BASELINE -> $FD_AFTER)"
echo "chaos smoke: recovered byte-identical to the pre-fault capture (fds $FD_BASELINE -> $FD_AFTER)"

# Invariant 4: seeded determinism. The printed schedule is a pure function
# of the seed, and replaying the capture with the chaos tier restarted on
# the same seed reproduces the same client-visible bytes.
"$OCTREE" chaos --routes "127.0.0.1:0=$ADDR_s1r0;127.0.0.1:0=$ADDR_s1r1" \
    --seed "$SEED" --profile mixed --plan-only --print-plan 32 > "$WORK/plan1.txt"
"$OCTREE" chaos --routes "127.0.0.1:0=$ADDR_s1r0;127.0.0.1:0=$ADDR_s1r1" \
    --seed "$SEED" --profile mixed --plan-only --print-plan 32 > "$WORK/plan2.txt"
cmp -s "$WORK/plan1.txt" "$WORK/plan2.txt" \
    || { diff "$WORK/plan1.txt" "$WORK/plan2.txt" | head; fail "same seed printed two different plans"; }
grep -q 'reset offset=' "$WORK/plan1.txt" || fail "mixed plan never schedules a reset"
kill -TERM "$PID_chaos12"
wait "$PID_chaos12" || true
start_chaos chaos12b mixed "$P10=$ADDR_s1r0;$P11=$ADDR_s1r1;$P20=$ADDR_s2r0;$P21=$ADDR_s2r1" 4
capture "$WORK/replay.txt"
cmp -s "$WORK/before.txt" "$WORK/replay.txt" \
    || { diff "$WORK/before.txt" "$WORK/replay.txt" | head; fail "same-seed replay produced different bytes"; }
echo "chaos smoke: same-seed schedule and replay are byte-identical"

# Graceful drain: router first, then the chaos tiers.
kill -TERM "$ROUTER_PID"
EXIT=0
wait "$ROUTER_PID" || EXIT=$?
[[ "$EXIT" -eq 0 ]] || { cat "$WORK/router.log"; fail "router drain exited $EXIT"; }
grep -q 'drained cleanly' "$WORK/router.log" || fail "no drain marker in the router log"
for name in chaos12b chaos0pt; do
    pid_var="PID_$name"
    kill -TERM "${!pid_var}"
    EXIT=0
    wait "${!pid_var}" || EXIT=$?
    [[ "$EXIT" -eq 0 ]] || { cat "$WORK/$name.log"; fail "chaos tier $name drain exited $EXIT"; }
    grep -q 'chaos proxies drained cleanly' "$WORK/$name.log" \
        || fail "no drain marker in the $name log"
done
echo "chaos smoke: seeded faults, typed degradation, byte-identical recovery, and drain all verified"
